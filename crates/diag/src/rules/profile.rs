//! System-profile rules: the structural conventions each exporter's
//! traces must follow (the checks `provbench-analysis`'s linter enforced
//! before the registry existed — the slugs are kept verbatim).

use super::{FileContext, Rule};
use crate::diagnostic::{Diagnostic, RuleInfo, Severity};
use provbench_rdf::{Graph, Iri, Subject, Term};
use provbench_vocab::{opmw, prov, rdf_type, wfprov};
use provbench_workflow::System;

/// `PB0201` — a process run must belong to exactly one workflow run.
pub static TAVERNA_PROCESS_RUN_PARENT: RuleInfo = RuleInfo {
    id: "PB0201",
    slug: "taverna/process-run-parent",
    severity: Severity::Error,
    summary: "a wfprov:ProcessRun must have exactly one wasPartOfWorkflowRun link",
};

/// `PB0202` — process runs carry both timestamps.
pub static TAVERNA_PROCESS_RUN_TIMES: RuleInfo = RuleInfo {
    id: "PB0202",
    slug: "taverna/process-run-times",
    severity: Severity::Error,
    summary: "a wfprov:ProcessRun must carry prov:startedAtTime and prov:endedAtTime",
};

/// `PB0203` — process runs point at their process description.
pub static TAVERNA_PROCESS_RUN_DESCRIPTION: RuleInfo = RuleInfo {
    id: "PB0203",
    slug: "taverna/process-run-description",
    severity: Severity::Warning,
    summary: "a wfprov:ProcessRun should link its wfdesc process via describedByProcess",
};

/// `PB0204` — workflow runs point at their workflow description.
pub static TAVERNA_RUN_DESCRIPTION: RuleInfo = RuleInfo {
    id: "PB0204",
    slug: "taverna/run-description",
    severity: Severity::Error,
    summary: "a wfprov:WorkflowRun must link its workflow via describedByWorkflow",
};

/// `PB0205` — artifacts carry values.
pub static TAVERNA_ARTIFACT_VALUE: RuleInfo = RuleInfo {
    id: "PB0205",
    slug: "taverna/artifact-value",
    severity: Severity::Warning,
    summary: "a wfprov:Artifact should carry a prov:value",
};

/// `PB0206` — properties the Taverna profile never asserts.
pub static TAVERNA_PROFILE_PURITY: RuleInfo = RuleInfo {
    id: "PB0206",
    slug: "taverna/profile-purity",
    severity: Severity::Error,
    summary: "a Taverna trace asserts a property outside its Table 2/3 profile",
};

/// `PB0301` — executed steps belong to an account.
pub static WINGS_PROCESS_ACCOUNT: RuleInfo = RuleInfo {
    id: "PB0301",
    slug: "wings/process-account",
    severity: Severity::Error,
    summary: "an opmw:WorkflowExecutionProcess must carry belongsToAccount",
};

/// `PB0302` — executed steps name their component.
pub static WINGS_PROCESS_COMPONENT: RuleInfo = RuleInfo {
    id: "PB0302",
    slug: "wings/process-component",
    severity: Severity::Error,
    summary: "an opmw:WorkflowExecutionProcess must carry hasExecutableComponent",
};

/// `PB0303` — executed steps record a status.
pub static WINGS_PROCESS_STATUS: RuleInfo = RuleInfo {
    id: "PB0303",
    slug: "wings/process-status",
    severity: Severity::Warning,
    summary: "an opmw:WorkflowExecutionProcess should carry hasStatus",
};

/// `PB0304` — artifacts record a location.
pub static WINGS_ARTIFACT_LOCATION: RuleInfo = RuleInfo {
    id: "PB0304",
    slug: "wings/artifact-location",
    severity: Severity::Warning,
    summary: "an opmw:WorkflowExecutionArtifact should carry prov:atLocation",
};

/// `PB0305` — artifacts belong to an account.
pub static WINGS_ARTIFACT_ACCOUNT: RuleInfo = RuleInfo {
    id: "PB0305",
    slug: "wings/artifact-account",
    severity: Severity::Error,
    summary: "an opmw:WorkflowExecutionArtifact must carry belongsToAccount",
};

/// `PB0306` — properties the Wings profile never asserts.
pub static WINGS_PROFILE_PURITY: RuleInfo = RuleInfo {
    id: "PB0306",
    slug: "wings/profile-purity",
    severity: Severity::Error,
    summary: "a Wings trace asserts per-activity times or communication (account-level only)",
};

fn instances<'a>(g: &'a Graph, class: &Iri) -> impl Iterator<Item = Iri> + 'a {
    let class: Term = class.clone().into();
    g.triples_matching(None, Some(&rdf_type()), Some(&class))
        .filter_map(|t| match &t.subject {
            Subject::Iri(i) => Some(i.clone()),
            Subject::Blank(_) => None,
        })
        .collect::<Vec<_>>()
        .into_iter()
}

fn missing_property(
    cx: &FileContext<'_>,
    rule: &'static RuleInfo,
    node: &Iri,
    property: &Iri,
    out: &mut Vec<Diagnostic>,
) {
    let subject = Subject::Iri(node.clone());
    if cx.graph.object(&subject, property).is_none() {
        out.push(
            cx.diag(rule, format!("missing {}", property.as_str()))
                .with_node(node.clone())
                .with_span(cx.node_span(node)),
        );
    }
}

fn forbidden_property(
    cx: &FileContext<'_>,
    rule: &'static RuleInfo,
    system: System,
    property: &Iri,
    out: &mut Vec<Diagnostic>,
) {
    if cx
        .graph
        .triples_matching(None, Some(property), None)
        .next()
        .is_some()
    {
        out.push(
            cx.diag(
                rule,
                format!("{} trace asserts {}", system.name(), property.as_str()),
            )
            .with_span(cx.pattern_span(None, Some(property), None)),
        );
    }
}

/// The Taverna profile pack (PB0201–PB0206); no-op on non-Taverna files.
pub struct TavernaProfile;

static TAVERNA_RULES: &[&RuleInfo] = &[
    &TAVERNA_PROCESS_RUN_PARENT,
    &TAVERNA_PROCESS_RUN_TIMES,
    &TAVERNA_PROCESS_RUN_DESCRIPTION,
    &TAVERNA_RUN_DESCRIPTION,
    &TAVERNA_ARTIFACT_VALUE,
    &TAVERNA_PROFILE_PURITY,
];

impl Rule for TavernaProfile {
    fn name(&self) -> &'static str {
        "taverna-profile"
    }

    fn rules(&self) -> &'static [&'static RuleInfo] {
        TAVERNA_RULES
    }

    fn check(&self, cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        if cx.system != Some(System::Taverna) {
            return;
        }
        let g = cx.graph;
        // Every process run belongs to exactly one workflow run, has both
        // times and points at its description.
        for p in instances(g, &wfprov::process_run()) {
            let s = Subject::Iri(p.clone());
            let parents = g.objects(&s, &wfprov::was_part_of_workflow_run()).count();
            if parents != 1 {
                out.push(
                    cx.diag(
                        &TAVERNA_PROCESS_RUN_PARENT,
                        format!("process run has {parents} wasPartOfWorkflowRun links (want 1)"),
                    )
                    .with_node(p.clone())
                    .with_span(cx.node_span(&p)),
                );
            }
            for time in [prov::started_at_time(), prov::ended_at_time()] {
                let subject = Subject::Iri(p.clone());
                if g.object(&subject, &time).is_none() {
                    out.push(
                        cx.diag(
                            &TAVERNA_PROCESS_RUN_TIMES,
                            format!("missing {}", time.as_str()),
                        )
                        .with_node(p.clone())
                        .with_span(cx.node_span(&p)),
                    );
                }
            }
            missing_property(
                cx,
                &TAVERNA_PROCESS_RUN_DESCRIPTION,
                &p,
                &wfprov::described_by_process(),
                out,
            );
        }
        // Every workflow run names its workflow.
        for r in instances(g, &wfprov::workflow_run()) {
            missing_property(
                cx,
                &TAVERNA_RUN_DESCRIPTION,
                &r,
                &wfprov::described_by_workflow(),
                out,
            );
        }
        // Artifacts carry values.
        for a in instances(g, &wfprov::artifact()) {
            missing_property(cx, &TAVERNA_ARTIFACT_VALUE, &a, &prov::value(), out);
        }
        // The Taverna profile never asserts these (Tables 2–3).
        for p in [
            prov::was_attributed_to(),
            prov::at_location(),
            prov::had_primary_source(),
        ] {
            forbidden_property(cx, &TAVERNA_PROFILE_PURITY, System::Taverna, &p, out);
        }
    }
}

/// The Wings profile pack (PB0301–PB0306); no-op on non-Wings files.
pub struct WingsProfile;

static WINGS_RULES: &[&RuleInfo] = &[
    &WINGS_PROCESS_ACCOUNT,
    &WINGS_PROCESS_COMPONENT,
    &WINGS_PROCESS_STATUS,
    &WINGS_ARTIFACT_LOCATION,
    &WINGS_ARTIFACT_ACCOUNT,
    &WINGS_PROFILE_PURITY,
];

impl Rule for WingsProfile {
    fn name(&self) -> &'static str {
        "wings-profile"
    }

    fn rules(&self) -> &'static [&'static RuleInfo] {
        WINGS_RULES
    }

    fn check(&self, cx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
        if cx.system != Some(System::Wings) {
            return;
        }
        let g = cx.graph;
        for p in instances(g, &opmw::workflow_execution_process()) {
            missing_property(
                cx,
                &WINGS_PROCESS_ACCOUNT,
                &p,
                &opmw::belongs_to_account(),
                out,
            );
            missing_property(
                cx,
                &WINGS_PROCESS_COMPONENT,
                &p,
                &opmw::has_executable_component(),
                out,
            );
            missing_property(cx, &WINGS_PROCESS_STATUS, &p, &opmw::has_status(), out);
        }
        for a in instances(g, &opmw::workflow_execution_artifact()) {
            missing_property(cx, &WINGS_ARTIFACT_LOCATION, &a, &prov::at_location(), out);
            missing_property(
                cx,
                &WINGS_ARTIFACT_ACCOUNT,
                &a,
                &opmw::belongs_to_account(),
                out,
            );
        }
        // Wings records times only at account granularity (Table 2), and
        // never asserts activity communication.
        for p in [
            prov::started_at_time(),
            prov::ended_at_time(),
            prov::was_informed_by(),
        ] {
            forbidden_property(cx, &WINGS_PROFILE_PURITY, System::Wings, &p, out);
        }
    }
}
