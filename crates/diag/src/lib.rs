//! `provbench-diag` — the corpus static-analysis engine ("provlint").
//!
//! This crate unifies every check the workbench can run over a corpus
//! file — W3C PROV-CONSTRAINTS validation, Taverna/Wings profile lints,
//! and vocabulary coverage — behind one [`Rule`] registry that produces
//! uniform [`Diagnostic`]s with stable `PB0xxx` rule IDs and, where the
//! parser recorded them, line/column [`Span`](provbench_rdf::Span)s.
//!
//! The pipeline is:
//!
//! 1. [`runner`] discovers `.ttl`/`.trig`/`.nt` files, parses each with
//!    span recording on, and runs the [`Registry`] over a
//!    [`FileContext`] — in parallel, with deterministic output order.
//! 2. [`baseline`] subtracts a committed set of accepted-finding
//!    fingerprints so CI fails only on *new* findings.
//! 3. [`render`] serializes the surviving reports as human text, JSON
//!    Lines, or SARIF 2.1.0.

pub mod baseline;
pub mod diagnostic;
pub mod json;
pub mod render;
pub mod rules;
pub mod runner;

pub use baseline::{apply_baseline, format_baseline, parse_baseline};
pub use diagnostic::{Diagnostic, RuleInfo, Severity};
pub use render::{render_jsonl, render_sarif, render_text};
pub use rules::{FileContext, Registry, Rule};
pub use runner::{
    collect_rdf_files, default_jobs, detect_system, lint_content, lint_files, lint_graph,
    lint_path, severity_counts, FileReport,
};
