//! `provbench-diag` — the corpus static-analysis engine ("provlint").
//!
//! This crate unifies every check the workbench can run over a corpus
//! file — W3C PROV-CONSTRAINTS validation, Taverna/Wings profile lints,
//! and vocabulary coverage — behind one [`Rule`] registry that produces
//! uniform [`Diagnostic`]s with stable `PB0xxx` rule IDs and, where the
//! parser recorded them, line/column [`Span`](provbench_rdf::Span)s.
//!
//! The pipeline is:
//!
//! 1. [`runner`] discovers `.ttl`/`.trig`/`.nt` files, parses each with
//!    span recording on, and runs the [`Registry`] over a
//!    [`FileContext`] — in parallel, with deterministic output order.
//! 2. [`baseline`] subtracts a committed set of accepted-finding
//!    fingerprints so CI fails only on *new* findings.
//! 3. [`render`] serializes the surviving reports as human text, JSON
//!    Lines, or SARIF 2.1.0.
//!
//! On top of the per-file pipeline sits the corpus layer: [`summary`]
//! distills each parsed graph into an [`AnalysisSummary`], the
//! [`dataflow`] fixpoint framework propagates facts across the
//! inter-graph reference edges, [`rules::corpus`] turns the solved
//! facts into `PB021x` diagnostics, and [`incremental`] caches the
//! per-file summaries and diagnostics in a lint snapshot so warm runs
//! re-solve only the cheap corpus fixpoint.

pub mod baseline;
pub mod catalog;
pub mod dataflow;
pub mod diagnostic;
pub mod incremental;
pub mod json;
pub mod render;
pub mod rules;
pub mod runner;
pub mod summary;

pub use baseline::{apply_baseline, format_baseline, parse_baseline};
pub use catalog::{all_rule_docs, rule_doc, RuleDoc};
pub use diagnostic::{Diagnostic, RelatedLocation, RuleInfo, Severity};
pub use incremental::{
    apply_corpus_rules, catalog_fingerprint, lint_corpus_incremental, CorpusLintOptions,
    CorpusLintOutcome,
};
pub use render::{render_jsonl, render_lint_json, render_sarif, render_text};
pub use rules::{corpus::check_corpus, FileContext, Registry, Rule};
pub use runner::{
    collect_rdf_files, corpus_label, default_jobs, detect_system, lint_content, lint_files,
    lint_files_labeled, lint_graph, lint_path, severity_counts, FileReport,
};
pub use summary::AnalysisSummary;
