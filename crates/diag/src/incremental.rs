//! The incremental corpus lint engine.
//!
//! A corpus lint run has two halves with very different costs:
//!
//! * **per-file analysis** — parse with span recording, run every rule
//!   pack, extract the [`AnalysisSummary`]; linear in file size and by
//!   far the expensive part, and
//! * **the corpus fixpoint** — [`check_corpus`] over the summaries;
//!   cheap (it never looks at a graph, only at summaries).
//!
//! This module caches the first half in `corpus.lint.snapshot` (format
//! owned by `provbench_core::snapshot`), keyed per file by the FNV-1a-64
//! of the file's bytes and globally by a hash of the rule catalog. On a
//! warm run, unchanged files replay their cached diagnostics and
//! summaries byte-for-byte; only changed files re-run rule bodies. The
//! corpus fixpoint is *always* re-solved from the (cached or fresh)
//! summaries, so its diagnostics are never persisted — which is what
//! makes cold and warm output identical by construction.

use crate::diagnostic::{Diagnostic, RelatedLocation, RuleInfo, Severity};
use crate::rules::corpus::check_corpus;
use crate::rules::Registry;
use crate::runner::{collect_rdf_files, corpus_label, lint_content, FileReport};
use crate::summary::{AnalysisSummary, EventKind, SummaryEdge};
use provbench_core::snapshot::{
    decode_lint, encode_lint, DiagnosticRecord, EventEdgeRecord, LintCache, LintEntry,
    RelatedRecord, SummaryRecord, LINT_SNAPSHOT_FILE,
};
use provbench_rdf::{parse_trig_spanned, parse_turtle_spanned, Graph, Iri, Span, SpanTable};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a corpus lint run should behave.
#[derive(Clone, Debug)]
pub struct CorpusLintOptions {
    /// Worker threads for per-file analysis.
    pub jobs: usize,
    /// Run the corpus-wide `PB021x` rules over the summaries.
    pub corpus_rules: bool,
    /// Load and save the lint snapshot.
    pub incremental: bool,
    /// Where the lint snapshot lives; defaults to
    /// `<root>/corpus.lint.snapshot` (or next to a single-file root).
    pub cache_path: Option<PathBuf>,
}

impl Default for CorpusLintOptions {
    fn default() -> Self {
        CorpusLintOptions {
            jobs: crate::runner::default_jobs(),
            corpus_rules: true,
            incremental: false,
            cache_path: None,
        }
    }
}

/// What a corpus lint run produced, plus its cache accounting.
#[derive(Debug)]
pub struct CorpusLintOutcome {
    /// Per-file reports in deterministic order, corpus diagnostics
    /// merged in.
    pub reports: Vec<FileReport>,
    /// Files whose rule bodies actually ran this time.
    pub analyzed: usize,
    /// Files served entirely from the lint snapshot.
    pub reused: usize,
    /// Where the cache was (or would have been) stored.
    pub cache_path: PathBuf,
    /// Whether a fresh snapshot was written this run.
    pub cache_written: bool,
}

/// FNV-1a 64-bit over a byte slice — the per-file fingerprint.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of the rule catalog plus the crate version. Baked into the lint
/// snapshot; any change to the rule set (new rule, changed severity or
/// summary, new linter release) invalidates every cached entry, since
/// rule bodies may have changed behaviour without changing inputs.
pub fn catalog_fingerprint(registry: &Registry) -> u64 {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(env!("CARGO_PKG_VERSION").as_bytes());
    for info in registry.rule_infos() {
        bytes.push(0);
        bytes.extend_from_slice(info.id.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(info.slug.as_bytes());
        bytes.push(severity_code(info.severity));
        bytes.extend_from_slice(info.summary.as_bytes());
    }
    fnv1a_64(&bytes)
}

fn severity_code(s: Severity) -> u8 {
    match s {
        Severity::Info => 0,
        Severity::Warning => 1,
        Severity::Error => 2,
    }
}

fn severity_from_code(code: u8) -> Option<Severity> {
    match code {
        0 => Some(Severity::Info),
        1 => Some(Severity::Warning),
        2 => Some(Severity::Error),
        _ => None,
    }
}

fn span_to_wire(span: &Span) -> (u64, u64, u64, u64) {
    (
        span.line as u64,
        span.column as u64,
        span.end_line as u64,
        span.end_column as u64,
    )
}

fn span_from_wire((line, column, end_line, end_column): (u64, u64, u64, u64)) -> Span {
    Span {
        line: line as usize,
        column: column as usize,
        end_line: end_line as usize,
        end_column: end_column as usize,
    }
}

fn diagnostic_to_record(d: &Diagnostic) -> DiagnosticRecord {
    DiagnosticRecord {
        rule_id: d.rule.id.to_owned(),
        severity: severity_code(d.severity),
        message: d.message.clone(),
        file: d.file.clone(),
        span: d.span.as_ref().map(span_to_wire),
        node: d.node.as_ref().map(|n| n.as_str().to_owned()),
        related: d
            .related
            .iter()
            .map(|r| RelatedRecord {
                message: r.message.clone(),
                file: r.file.clone(),
                span: r.span.as_ref().map(span_to_wire),
            })
            .collect(),
    }
}

/// Rebuild a [`Diagnostic`] from its wire form, consuming the record
/// (warm replay moves the cached strings instead of cloning them).
/// `None` when the record names a rule the current catalog does not
/// have or carries a bad severity code — the caller treats the whole
/// entry as a cache miss.
fn diagnostic_from_record(
    record: DiagnosticRecord,
    rules: &BTreeMap<&str, &'static RuleInfo>,
) -> Option<Diagnostic> {
    let rule = rules.get(record.rule_id.as_str())?;
    let mut d = Diagnostic::new(rule, record.message);
    d.severity = severity_from_code(record.severity)?;
    d.file = record.file;
    d.span = record.span.map(span_from_wire);
    d.node = record.node.map(Iri::new_unchecked);
    d.related = record
        .related
        .into_iter()
        .map(|r| RelatedLocation {
            message: r.message,
            file: r.file,
            span: r.span.map(span_from_wire),
        })
        .collect();
    Some(d)
}

fn summary_to_record(s: &AnalysisSummary) -> SummaryRecord {
    SummaryRecord {
        declared: s.declared.iter().cloned().collect(),
        used_targets: s.used_targets.iter().cloned().collect(),
        derived_targets: s.derived_targets.iter().cloned().collect(),
        references: s.references.iter().cloned().collect(),
        derivations: s.derivations.clone(),
        events: s
            .events
            .iter()
            .map(|e| EventEdgeRecord {
                from_kind: e.from.0.code(),
                from: e.from.1.clone(),
                to_kind: e.to.0.code(),
                to: e.to.1.clone(),
                strict: e.strict,
                derivation: e.derivation,
            })
            .collect(),
        time_min: s.time_min.clone(),
        time_max: s.time_max.clone(),
    }
}

/// Inverse of [`summary_to_record`], consuming the record; `None` on an
/// unknown event kind code (the caller treats the entry as a cache
/// miss).
fn summary_from_record(record: SummaryRecord) -> Option<AnalysisSummary> {
    let mut events = Vec::with_capacity(record.events.len());
    for e in record.events {
        events.push(SummaryEdge {
            from: (EventKind::from_code(e.from_kind)?, e.from),
            to: (EventKind::from_code(e.to_kind)?, e.to),
            strict: e.strict,
            derivation: e.derivation,
        });
    }
    Some(AnalysisSummary {
        declared: record.declared.into_iter().collect(),
        used_targets: record.used_targets.into_iter().collect(),
        derived_targets: record.derived_targets.into_iter().collect(),
        references: record.references.into_iter().collect(),
        derivations: record.derivations,
        events,
        time_min: record.time_min,
        time_max: record.time_max,
    })
}

/// The result of analyzing (or replaying) one file.
struct FileAnalysis {
    label: String,
    fingerprint: u64,
    summary: AnalysisSummary,
    diagnostics: Vec<Diagnostic>,
    /// True when the rule bodies actually ran (a cache miss).
    fresh: bool,
}

/// Parse one document and run the per-file rules *and* the summary
/// extraction in a single pass over the same graph.
fn analyze_content(label: &str, content: &str, registry: &Registry) -> FileAnalysis {
    let parsed: Result<(Graph, SpanTable), _> = if label.ends_with(".trig") {
        parse_trig_spanned(content).map(|(ds, _, spans)| (ds.union_graph(), spans))
    } else {
        parse_turtle_spanned(content).map(|(g, _, spans)| (g, spans))
    };
    let (summary, diagnostics) = match parsed {
        Err(_) => (
            AnalysisSummary::default(),
            lint_content(label, content, registry),
        ),
        Ok((graph, spans)) => {
            let cx = crate::rules::FileContext {
                path: Some(label),
                graph: &graph,
                spans: &spans,
                system: crate::runner::detect_system(&graph),
            };
            (AnalysisSummary::of_graph(&graph), registry.check(&cx))
        }
    };
    FileAnalysis {
        label: label.to_owned(),
        fingerprint: fnv1a_64(content.as_bytes()),
        summary,
        diagnostics,
        fresh: true,
    }
}

/// Load the lint snapshot at `path`, if present, valid and produced by
/// the same rule catalog. Any failure degrades to a cold run.
fn load_cache(path: &Path, catalog: u64) -> BTreeMap<String, LintEntry> {
    let Ok(bytes) = std::fs::read(path) else {
        return BTreeMap::new();
    };
    match decode_lint(&bytes) {
        Ok(cache) if cache.catalog == catalog => cache
            .entries
            .into_iter()
            .map(|e| (e.path.clone(), e))
            .collect(),
        _ => BTreeMap::new(),
    }
}

/// Atomically replace the lint snapshot: write a temp file next to it,
/// then rename over the target so readers never see a torn file.
fn save_cache(path: &Path, cache: &LintCache) -> io::Result<()> {
    let tmp = path.with_extension("snapshot.tmp");
    std::fs::write(&tmp, encode_lint(cache))?;
    std::fs::rename(&tmp, path)
}

/// Lint everything under `root` with optional corpus rules and optional
/// snapshot-backed incrementality. This is the engine behind
/// `provbench lint --corpus-rules --incremental`.
///
/// Guarantees:
///
/// * output is deterministic and identical between cold and warm runs
///   over the same tree (asserted by tests — cached diagnostics replay
///   byte-for-byte, corpus diagnostics are re-derived from summaries),
/// * after editing one file, only that file's rule bodies re-run
///   ([`CorpusLintOutcome::analyzed`] counts them).
pub fn lint_corpus_incremental(
    root: &Path,
    registry: &Registry,
    opts: &CorpusLintOptions,
) -> io::Result<CorpusLintOutcome> {
    let _span = provbench_obs::span("lint.corpus");
    let files = collect_rdf_files(root)?;
    let cache_path = opts.cache_path.clone().unwrap_or_else(|| {
        if root.is_dir() {
            root.join(LINT_SNAPSHOT_FILE)
        } else {
            root.with_file_name(LINT_SNAPSHOT_FILE)
        }
    });
    let catalog = catalog_fingerprint(registry);
    let cached_len;
    let cached: Mutex<BTreeMap<String, LintEntry>> = {
        let map = if opts.incremental {
            load_cache(&cache_path, catalog)
        } else {
            BTreeMap::new()
        };
        cached_len = map.len();
        Mutex::new(map)
    };
    let rule_map: BTreeMap<&str, &'static RuleInfo> = registry
        .rule_infos()
        .into_iter()
        .map(|info| (info.id, info))
        .collect();

    // Per-file pass: replay a cache hit, analyze a miss. Parallel over
    // worker threads; results re-ordered by input index afterwards. A
    // hit *moves* its entry out of the cache — warm replay never clones
    // the cached strings.
    let labels: Vec<String> = files.iter().map(|p| corpus_label(root, p)).collect();
    let process = |i: usize| -> FileAnalysis {
        let (path, label) = (&files[i], &labels[i]);
        match std::fs::read_to_string(path) {
            Ok(content) => {
                let fingerprint = fnv1a_64(content.as_bytes());
                let hit = cached
                    .lock()
                    .expect("no poisoned workers")
                    .remove(label)
                    .filter(|e| e.fingerprint == fingerprint);
                match hit.and_then(|e| replay_entry(e, &rule_map)) {
                    Some(replayed) => replayed,
                    None => analyze_content(label, &content, registry),
                }
            }
            Err(e) => FileAnalysis {
                label: label.clone(),
                fingerprint: 0,
                summary: AnalysisSummary::default(),
                diagnostics: vec![Diagnostic::new(
                    &crate::rules::PARSE_ERROR,
                    format!("cannot read file: {e}"),
                )
                .with_file(label)],
                fresh: true,
            },
        }
    };
    let jobs = opts.jobs.max(1).min(files.len().max(1));
    let analyses: Vec<FileAnalysis> = if jobs <= 1 {
        // Single worker: run inline — spawning a scoped thread costs
        // more than replaying a small warm corpus.
        (0..files.len()).map(process).collect()
    } else {
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, FileAnalysis)>> =
            Mutex::new(Vec::with_capacity(files.len()));
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= files.len() {
                        break;
                    }
                    let analysis = process(i);
                    results
                        .lock()
                        .expect("no poisoned workers")
                        .push((i, analysis));
                });
            }
        });
        let mut indexed = results.into_inner().expect("workers joined");
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, a)| a).collect()
    };

    let analyzed = analyses.iter().filter(|a| a.fresh).count();
    let reused = analyses.len() - analyzed;
    let obs = provbench_obs::global();
    for (mode, count) in [("analyzed", analyzed), ("replayed", reused)] {
        if count > 0 {
            obs.counter_with(
                "provbench_lint_files_total",
                "Files linted, by mode (cold analysis vs snapshot replay)",
                &[("mode", mode)],
            )
            .add(count as u64);
        }
    }

    // Persist the per-file half before corpus diagnostics are merged in
    // — corpus findings depend on the whole tree and are re-solved from
    // summaries every run, so caching them would be both redundant and a
    // staleness hazard.
    let mut cache_written = false;
    if opts.incremental {
        // Hits were moved out of `cached`, so leftovers are exactly the
        // entries whose files vanished; together with the count check
        // this detects any change to the path set.
        let leftovers = !cached.lock().expect("no poisoned workers").is_empty();
        let stale_paths = cached_len != analyses.len() || leftovers;
        if analyzed > 0 || stale_paths {
            let cache = LintCache {
                catalog,
                entries: analyses
                    .iter()
                    .map(|a| LintEntry {
                        path: a.label.clone(),
                        fingerprint: a.fingerprint,
                        summary: summary_to_record(&a.summary),
                        diagnostics: a.diagnostics.iter().map(diagnostic_to_record).collect(),
                    })
                    .collect(),
            };
            save_cache(&cache_path, &cache)?;
            cache_written = true;
        }
    }

    // Consume the analyses: diagnostics and summaries move into the
    // reports / corpus-rule entries instead of being cloned.
    let mut reports: Vec<FileReport> = Vec::with_capacity(analyses.len());
    let mut entries: Vec<(String, AnalysisSummary)> = Vec::new();
    for a in analyses {
        if opts.corpus_rules {
            entries.push((a.label.clone(), a.summary));
        }
        reports.push(FileReport {
            path: a.label,
            diagnostics: a.diagnostics,
        });
    }
    if opts.corpus_rules {
        apply_corpus_rules(&mut reports, &entries);
    }

    Ok(CorpusLintOutcome {
        reports,
        analyzed,
        reused,
        cache_path,
        cache_written,
    })
}

/// Solve the corpus fixpoint over `entries` and merge the resulting
/// `PB021x` diagnostics into per-file reports (matched by label; a
/// diagnostic whose label has no report gets a fresh one). Used both by
/// the incremental engine and by callers that already hold parsed
/// graphs (`lint --dir`, the serve loader, the in-memory corpus).
pub fn apply_corpus_rules(reports: &mut Vec<FileReport>, entries: &[(String, AnalysisSummary)]) {
    for d in check_corpus(entries) {
        let target = d.file.as_deref().unwrap_or_default().to_owned();
        match reports.iter_mut().find(|r| r.path == target) {
            Some(report) => report.diagnostics.push(d),
            None => reports.push(FileReport {
                path: target,
                diagnostics: vec![d],
            }),
        }
    }
    for report in reports.iter_mut() {
        report.diagnostics.sort_by_key(Diagnostic::sort_key);
    }
}

/// Turn a cache entry back into a [`FileAnalysis`]. `None` when any
/// record fails to convert (unknown rule id, bad code) — the file is
/// then re-analyzed as if the entry were absent.
fn replay_entry(
    entry: LintEntry,
    rules: &BTreeMap<&str, &'static RuleInfo>,
) -> Option<FileAnalysis> {
    let summary = summary_from_record(entry.summary)?;
    let mut diagnostics = Vec::with_capacity(entry.diagnostics.len());
    for record in entry.diagnostics {
        diagnostics.push(diagnostic_from_record(record, rules)?);
    }
    Some(FileAnalysis {
        label: entry.path,
        fingerprint: entry.fingerprint,
        summary,
        diagnostics,
        fresh: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, name: &str, content: &str) -> PathBuf {
        let path = dir.join(name);
        std::fs::write(&path, content).expect("write fixture");
        path
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("provbench-incr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tempdir");
        dir
    }

    const GOOD: &str = r#"
        @prefix prov: <http://www.w3.org/ns/prov#> .
        @prefix ex: <http://example.org/> .
        ex:out a prov:Entity ; prov:wasGeneratedBy ex:run ; prov:wasDerivedFrom ex:in .
        ex:in a prov:Entity .
        ex:run a prov:Activity ; prov:used ex:in .
    "#;

    #[test]
    fn warm_run_reuses_everything_and_matches_cold_output() {
        let dir = tempdir("warm");
        write(&dir, "a.ttl", GOOD);
        write(&dir, "b.ttl", &GOOD.replace("example.org", "example.net"));
        let registry = Registry::with_corpus_rules();
        let opts = CorpusLintOptions {
            jobs: 2,
            corpus_rules: true,
            incremental: true,
            cache_path: None,
        };
        let cold = lint_corpus_incremental(&dir, &registry, &opts).expect("cold run");
        assert_eq!(cold.analyzed, 2);
        assert_eq!(cold.reused, 0);
        assert!(cold.cache_written);
        assert!(cold.cache_path.exists());
        let warm = lint_corpus_incremental(&dir, &registry, &opts).expect("warm run");
        assert_eq!(warm.analyzed, 0, "warm run must not re-run rule bodies");
        assert_eq!(warm.reused, 2);
        assert!(!warm.cache_written, "unchanged corpus must not rewrite");
        assert_eq!(
            crate::render::render_jsonl(&cold.reports),
            crate::render::render_jsonl(&warm.reports),
            "cold and warm output must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn editing_one_file_reanalyzes_only_that_file() {
        let dir = tempdir("edit");
        let a = write(&dir, "a.ttl", GOOD);
        write(&dir, "b.ttl", &GOOD.replace("example.org", "example.net"));
        let registry = Registry::with_corpus_rules();
        let opts = CorpusLintOptions {
            jobs: 1,
            corpus_rules: true,
            incremental: true,
            cache_path: None,
        };
        lint_corpus_incremental(&dir, &registry, &opts).expect("cold run");
        let mut content = std::fs::read_to_string(&a).expect("read a.ttl");
        content.push_str("\n# a trailing comment\n");
        std::fs::write(&a, content).expect("rewrite a.ttl");
        let warm = lint_corpus_incremental(&dir, &registry, &opts).expect("warm run");
        assert_eq!(warm.analyzed, 1, "only the edited file re-runs");
        assert_eq!(warm.reused, 1);
        assert!(warm.cache_written);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_change_invalidates_the_cache() {
        let dir = tempdir("catalog");
        write(&dir, "a.ttl", GOOD);
        let corpus_registry = Registry::with_corpus_rules();
        let default_registry = Registry::with_default_rules();
        let opts = CorpusLintOptions {
            jobs: 1,
            corpus_rules: false,
            incremental: true,
            cache_path: None,
        };
        lint_corpus_incremental(&dir, &corpus_registry, &opts).expect("cold run");
        let other = lint_corpus_incremental(&dir, &default_registry, &opts).expect("other run");
        assert_eq!(
            other.analyzed, 1,
            "a different rule catalog must miss the cache"
        );
        assert_ne!(
            catalog_fingerprint(&corpus_registry),
            catalog_fingerprint(&default_registry)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_degrades_to_a_cold_run() {
        let dir = tempdir("corrupt");
        write(&dir, "a.ttl", GOOD);
        let registry = Registry::with_corpus_rules();
        let opts = CorpusLintOptions {
            jobs: 1,
            corpus_rules: true,
            incremental: true,
            cache_path: None,
        };
        let cold = lint_corpus_incremental(&dir, &registry, &opts).expect("cold run");
        std::fs::write(&cold.cache_path, b"PBLINTgarbage").expect("corrupt cache");
        let rerun = lint_corpus_incremental(&dir, &registry, &opts).expect("re-run");
        assert_eq!(rerun.analyzed, 1);
        assert_eq!(
            crate::render::render_jsonl(&cold.reports),
            crate::render::render_jsonl(&rerun.reports)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_error_files_are_cached_too() {
        let dir = tempdir("parse-error");
        write(&dir, "bad.ttl", "this is not turtle @@@");
        let registry = Registry::with_corpus_rules();
        let opts = CorpusLintOptions {
            jobs: 1,
            corpus_rules: true,
            incremental: true,
            cache_path: None,
        };
        let cold = lint_corpus_incremental(&dir, &registry, &opts).expect("cold run");
        assert!(cold.reports[0]
            .diagnostics
            .iter()
            .any(|d| d.rule.id == "PB0001"));
        let warm = lint_corpus_incremental(&dir, &registry, &opts).expect("warm run");
        assert_eq!(warm.analyzed, 0);
        assert_eq!(
            crate::render::render_jsonl(&cold.reports),
            crate::render::render_jsonl(&warm.reports)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
