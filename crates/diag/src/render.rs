//! Renderers: human-readable text, JSON Lines, and SARIF 2.1.0.

use crate::diagnostic::Diagnostic;
use crate::json::Json;
use crate::rules::Registry;
use crate::runner::FileReport;
use std::fmt::Write as _;

/// One `file:line:col: severity: message [PBxxxx]` line per diagnostic,
/// followed by a summary line.
pub fn render_text(reports: &[FileReport]) -> String {
    let mut out = String::new();
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut infos = 0usize;
    for report in reports {
        for d in &report.diagnostics {
            match d.severity {
                crate::Severity::Error => errors += 1,
                crate::Severity::Warning => warnings += 1,
                crate::Severity::Info => infos += 1,
            }
            let _ = writeln!(out, "{d}");
        }
    }
    let files = reports.len();
    let _ = writeln!(
        out,
        "{files} file{} checked: {errors} error{}, {warnings} warning{}, {infos} info{}",
        plural(files),
        plural(errors),
        plural(warnings),
        plural(infos),
    );
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn diagnostic_json(d: &Diagnostic) -> Json {
    let mut members = vec![
        ("rule".into(), Json::str(d.rule.id)),
        ("slug".into(), Json::str(d.rule.slug)),
        ("severity".into(), Json::str(d.severity.name())),
        ("message".into(), Json::str(&d.message)),
        ("fingerprint".into(), Json::str(d.fingerprint())),
    ];
    if let Some(file) = &d.file {
        members.push(("file".into(), Json::str(file)));
    }
    if let Some(span) = &d.span {
        members.push(("line".into(), Json::int(span.line)));
        members.push(("column".into(), Json::int(span.column)));
        members.push(("endLine".into(), Json::int(span.end_line)));
        members.push(("endColumn".into(), Json::int(span.end_column)));
    }
    if let Some(node) = &d.node {
        members.push(("node".into(), Json::str(node.as_str())));
    }
    if !d.related.is_empty() {
        let related: Vec<Json> = d
            .related
            .iter()
            .map(|r| {
                let mut obj = vec![("message".into(), Json::str(&r.message))];
                if let Some(file) = &r.file {
                    obj.push(("file".into(), Json::str(file)));
                }
                if let Some(span) = &r.span {
                    obj.push(("line".into(), Json::int(span.line)));
                    obj.push(("column".into(), Json::int(span.column)));
                }
                Json::Obj(obj)
            })
            .collect();
        members.push(("related".into(), Json::Arr(related)));
    }
    Json::Obj(members)
}

/// One compact JSON object per diagnostic, one per line (JSON Lines).
pub fn render_jsonl(reports: &[FileReport]) -> String {
    let mut out = String::new();
    for report in reports {
        for d in &report.diagnostics {
            out.push_str(&diagnostic_json(d).to_compact());
            out.push('\n');
        }
    }
    out
}

/// One compact JSON document summarizing a whole lint run — the payload
/// the HTTP endpoint serves at `GET /lint`.
pub fn render_lint_json(reports: &[FileReport]) -> String {
    let (errors, warnings, infos) = crate::runner::severity_counts(reports);
    let diagnostics: Vec<Json> = reports
        .iter()
        .flat_map(|r| r.diagnostics.iter())
        .map(diagnostic_json)
        .collect();
    Json::Obj(vec![
        ("files".into(), Json::int(reports.len())),
        ("errors".into(), Json::int(errors)),
        ("warnings".into(), Json::int(warnings)),
        ("infos".into(), Json::int(infos)),
        ("diagnostics".into(), Json::Arr(diagnostics)),
    ])
    .to_compact()
}

/// The tool version reported in SARIF output.
const TOOL_VERSION: &str = env!("CARGO_PKG_VERSION");

/// A SARIF 2.1.0 log: one run, the full rule catalog, one result per
/// diagnostic with a physical location when a span is known.
pub fn render_sarif(reports: &[FileReport], registry: &Registry) -> String {
    let infos = registry.rule_infos();
    let rules: Vec<Json> = infos
        .iter()
        .map(|info| {
            Json::Obj(vec![
                ("id".into(), Json::str(info.id)),
                ("name".into(), Json::str(info.slug)),
                (
                    "shortDescription".into(),
                    Json::Obj(vec![("text".into(), Json::str(info.summary))]),
                ),
                (
                    "defaultConfiguration".into(),
                    Json::Obj(vec![(
                        "level".into(),
                        Json::str(info.severity.sarif_level()),
                    )]),
                ),
            ])
        })
        .collect();
    let mut results = Vec::new();
    for report in reports {
        for d in &report.diagnostics {
            let rule_index = infos.iter().position(|i| i.id == d.rule.id).unwrap_or(0);
            let mut result = vec![
                ("ruleId".into(), Json::str(d.rule.id)),
                ("ruleIndex".into(), Json::int(rule_index)),
                ("level".into(), Json::str(d.severity.sarif_level())),
                (
                    "message".into(),
                    Json::Obj(vec![("text".into(), Json::str(&d.message))]),
                ),
            ];
            let mut physical = vec![(
                "artifactLocation".into(),
                Json::Obj(vec![(
                    "uri".into(),
                    Json::str(d.file.as_deref().unwrap_or(&report.path)),
                )]),
            )];
            if let Some(span) = &d.span {
                physical.push((
                    "region".into(),
                    Json::Obj(vec![
                        ("startLine".into(), Json::int(span.line)),
                        ("startColumn".into(), Json::int(span.column)),
                        ("endLine".into(), Json::int(span.end_line)),
                        ("endColumn".into(), Json::int(span.end_column)),
                    ]),
                ));
            }
            result.push((
                "locations".into(),
                Json::Arr(vec![Json::Obj(vec![(
                    "physicalLocation".into(),
                    Json::Obj(physical),
                )])]),
            ));
            if !d.related.is_empty() {
                let related: Vec<Json> = d
                    .related
                    .iter()
                    .map(|r| {
                        let mut physical = vec![(
                            "artifactLocation".into(),
                            Json::Obj(vec![(
                                "uri".into(),
                                Json::str(
                                    r.file
                                        .as_deref()
                                        .or(d.file.as_deref())
                                        .unwrap_or(&report.path),
                                ),
                            )]),
                        )];
                        if let Some(span) = &r.span {
                            physical.push((
                                "region".into(),
                                Json::Obj(vec![
                                    ("startLine".into(), Json::int(span.line)),
                                    ("startColumn".into(), Json::int(span.column)),
                                    ("endLine".into(), Json::int(span.end_line)),
                                    ("endColumn".into(), Json::int(span.end_column)),
                                ]),
                            ));
                        }
                        Json::Obj(vec![
                            (
                                "message".into(),
                                Json::Obj(vec![("text".into(), Json::str(&r.message))]),
                            ),
                            ("physicalLocation".into(), Json::Obj(physical)),
                        ])
                    })
                    .collect();
                result.push(("relatedLocations".into(), Json::Arr(related)));
            }
            result.push((
                "partialFingerprints".into(),
                Json::Obj(vec![(
                    "provbenchFingerprint/v1".into(),
                    Json::str(d.fingerprint()),
                )]),
            ));
            results.push(Json::Obj(result));
        }
    }
    let log = Json::Obj(vec![
        (
            "$schema".into(),
            Json::str("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version".into(), Json::str("2.1.0")),
        (
            "runs".into(),
            Json::Arr(vec![Json::Obj(vec![
                (
                    "tool".into(),
                    Json::Obj(vec![(
                        "driver".into(),
                        Json::Obj(vec![
                            ("name".into(), Json::str("provbench-lint")),
                            (
                                "informationUri".into(),
                                Json::str("https://github.com/provbench/provbench-rs"),
                            ),
                            ("version".into(), Json::str(TOOL_VERSION)),
                            ("rules".into(), Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("columnKind".into(), Json::str("utf16CodeUnits")),
                ("results".into(), Json::Arr(results)),
            ])]),
        ),
    ]);
    log.to_compact()
}
