//! A tiny fixpoint framework for corpus-wide dataflow analyses.
//!
//! The corpus rules (`rules::corpus`) need to propagate facts across
//! *inter-graph* edges — a derivation chain in one document can bottom
//! out in an entity declared by another. Rather than hand-roll each
//! propagation, this module provides the textbook pieces once:
//!
//! * a [`Lattice`] trait (join-semilattice with a `bottom` element and a
//!   changed-flag `join`),
//! * a deterministic worklist [`solve`] over a [`FlowGraph`] in either
//!   [`Direction`], and
//! * an iterative Tarjan [`scc_ids`] (shared with the per-file PB0104 /
//!   PB0107 cycle rules, which previously kept a private copy).
//!
//! Determinism matters more than raw speed here: diagnostics derived
//! from the solution must be byte-identical between cold and warm runs,
//! so the worklist is FIFO over node indices and every adjacency list is
//! built in sorted order by the callers.

/// A join-semilattice value.
///
/// `join_from` must be monotone (repeated joins converge) and return
/// whether `self` actually changed — the solver uses the flag to decide
/// when to re-enqueue successors, so a value that reports a change it
/// did not make will loop forever, and one that hides a change will
/// under-approximate.
pub trait Lattice: Clone {
    /// The least element; the solver starts every node here unless the
    /// caller seeds an initial value.
    fn bottom() -> Self;
    /// Join `other` into `self`; returns `true` iff `self` changed.
    fn join_from(&mut self, other: &Self) -> bool;
}

/// `false < true` with `join = or`: the reachability lattice.
impl Lattice for bool {
    fn bottom() -> Self {
        false
    }

    fn join_from(&mut self, other: &Self) -> bool {
        let changed = *other && !*self;
        *self |= *other;
        changed
    }
}

/// Set union over small index sets (e.g. "which documents contribute to
/// this node"); ordered so solutions render deterministically.
impl Lattice for std::collections::BTreeSet<usize> {
    fn bottom() -> Self {
        std::collections::BTreeSet::new()
    }

    fn join_from(&mut self, other: &Self) -> bool {
        let before = self.len();
        self.extend(other.iter().copied());
        self.len() != before
    }
}

/// Which way facts flow along the edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts at an edge's source reach its target.
    Forward,
    /// Facts at an edge's target reach its source.
    Backward,
}

/// A directed graph over dense node indices `0..len`.
#[derive(Clone, Debug, Default)]
pub struct FlowGraph {
    succ: Vec<Vec<usize>>,
}

impl FlowGraph {
    /// A graph with `len` nodes and no edges.
    pub fn new(len: usize) -> Self {
        FlowGraph {
            succ: vec![Vec::new(); len],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Add a directed edge `from -> to` (duplicates are tolerated; the
    /// solver joins idempotently).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        self.succ[from].push(to);
    }

    /// Successors of `n` in the stored (forward) orientation.
    pub fn successors(&self, n: usize) -> &[usize] {
        &self.succ[n]
    }

    /// The same graph with every edge reversed.
    pub fn reversed(&self) -> FlowGraph {
        let mut rev = FlowGraph::new(self.len());
        for (from, succs) in self.succ.iter().enumerate() {
            for &to in succs {
                rev.add_edge(to, from);
            }
        }
        rev
    }
}

/// Solve a dataflow problem to its least fixpoint.
///
/// `init` seeds each node (use [`Lattice::bottom`] for "no fact");
/// `transfer(node, in_value)` produces the value the node propagates to
/// its neighbours. The worklist is FIFO and initially holds every node
/// in index order, so the result — and anything rendered from it — is
/// deterministic.
pub fn solve<L, F>(graph: &FlowGraph, direction: Direction, init: Vec<L>, transfer: F) -> Vec<L>
where
    L: Lattice,
    F: Fn(usize, &L) -> L,
{
    assert_eq!(init.len(), graph.len(), "one seed value per node");
    let oriented;
    let edges = match direction {
        Direction::Forward => graph,
        Direction::Backward => {
            oriented = graph.reversed();
            &oriented
        }
    };
    let mut state = init;
    let mut queued = vec![true; graph.len()];
    let mut worklist: std::collections::VecDeque<usize> = (0..graph.len()).collect();
    while let Some(n) = worklist.pop_front() {
        queued[n] = false;
        let out = transfer(n, &state[n]);
        for &s in edges.successors(n) {
            if state[s].join_from(&out) && !queued[s] {
                queued[s] = true;
                worklist.push_back(s);
            }
        }
    }
    state
}

/// Strongly connected components via iterative Tarjan; returns a
/// component id per node. Ids are assigned in completion order, which is
/// deterministic for a given adjacency, and nodes in the same component
/// share an id.
pub fn scc_ids(n: usize, adjacency: &[Vec<usize>]) -> Vec<usize> {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![UNVISITED; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;

    // Iterative Tarjan: (node, next child position) call frames.
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < adjacency[v].len() {
                let w = adjacency[v][*child];
                *child += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn chain(n: usize) -> FlowGraph {
        let mut g = FlowGraph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn forward_reachability_over_a_chain() {
        let g = chain(4);
        let mut init = vec![false; 4];
        init[0] = true;
        let out = solve(&g, Direction::Forward, init, |_, v| *v);
        assert_eq!(out, vec![true; 4]);
    }

    #[test]
    fn backward_reachability_over_a_chain() {
        let g = chain(4);
        let mut init = vec![false; 4];
        init[3] = true;
        let out = solve(&g, Direction::Backward, init, |_, v| *v);
        assert_eq!(out, vec![true; 4]);
    }

    #[test]
    fn cycles_converge() {
        let mut g = FlowGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let mut init: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); 3];
        init[1].insert(7);
        let out = solve(&g, Direction::Forward, init, |n, v| {
            let mut out = v.clone();
            out.insert(n);
            out
        });
        // Every node sees every node plus the seeded fact.
        for v in &out {
            assert_eq!(v, &BTreeSet::from([0, 1, 2, 7]));
        }
    }

    #[test]
    fn transfer_can_gate_propagation() {
        // Node 1 swallows facts: nothing downstream of it is reached.
        let g = chain(4);
        let mut init = vec![false; 4];
        init[0] = true;
        let out = solve(&g, Direction::Forward, init, |n, v| *v && n != 1);
        assert_eq!(out, vec![true, true, false, false]);
    }

    #[test]
    fn scc_groups_cycles_and_separates_the_rest() {
        // 0 -> 1 -> 2 -> 0 (one component), 3 -> 4 (two singletons).
        let adj = vec![vec![1], vec![2], vec![0], vec![4], vec![]];
        let comp = scc_ids(5, &adj);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[4]);
    }

    #[test]
    fn scc_handles_self_loops_and_empty_graphs() {
        assert!(scc_ids(0, &[]).is_empty());
        let adj = vec![vec![0], vec![]];
        let comp = scc_ids(2, &adj);
        assert_ne!(comp[0], comp[1]);
    }
}
