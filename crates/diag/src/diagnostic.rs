//! The diagnostic type every lint rule produces.

use provbench_rdf::{Iri, Span};
use std::fmt;

/// How serious a diagnostic is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Noteworthy but expected; never fails a lint run.
    Info,
    /// A profile smell a curator should look at.
    Warning,
    /// A violation that makes the trace inconsistent or unusable.
    Error,
}

impl Severity {
    /// Lowercase name as printed by the text renderer.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// The SARIF `level` for this severity.
    pub fn sarif_level(&self) -> &'static str {
        match self {
            Severity::Info => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static metadata for one lint rule: the stable `PB0xxx` identifier, the
/// human-oriented slug, default severity and a one-line summary.
#[derive(Debug, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable identifier, e.g. `PB0201`. Never reused or renumbered.
    pub id: &'static str,
    /// Readable slug, e.g. `taverna/process-run-parent` (the names the
    /// pre-registry linter used).
    pub slug: &'static str,
    /// Default severity of diagnostics from this rule.
    pub severity: Severity,
    /// One-line description of what the rule checks.
    pub summary: &'static str,
}

/// A secondary location a multi-span diagnostic points at — a member
/// edge of a cycle, or (for corpus rules) another document involved in
/// the finding. Rendered as SARIF `relatedLocations`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelatedLocation {
    /// What this location contributes to the finding.
    pub message: String,
    /// Source file, when known (may differ from the diagnostic's file).
    pub file: Option<String>,
    /// Source region, when the parser recorded spans.
    pub span: Option<Span>,
}

/// One finding, tied to a rule and (when known) a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that produced this diagnostic.
    pub rule: &'static RuleInfo,
    /// Severity (defaults to the rule's, may be escalated by `--deny`).
    pub severity: Severity,
    /// Human-readable detail.
    pub message: String,
    /// Source file the finding is about, when linting files.
    pub file: Option<String>,
    /// Source region, when the parser recorded spans.
    pub span: Option<Span>,
    /// The offending node, when the rule points at one.
    pub node: Option<Iri>,
    /// Secondary locations (cycle members, other involved documents).
    /// Not part of the fingerprint: the primary finding identifies the
    /// baseline entry.
    pub related: Vec<RelatedLocation>,
}

impl Diagnostic {
    /// A diagnostic with the rule's default severity and no location.
    pub fn new(rule: &'static RuleInfo, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: rule.severity,
            message: message.into(),
            file: None,
            span: None,
            node: None,
            related: Vec::new(),
        }
    }

    /// Attach the offending node.
    pub fn with_node(mut self, node: Iri) -> Self {
        self.node = Some(node);
        self
    }

    /// Attach a source span (no-op when `None` — rules pass through
    /// whatever the span table had).
    pub fn with_span(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Attach the source file path.
    pub fn with_file(mut self, file: impl Into<String>) -> Self {
        self.file = Some(file.into());
        self
    }

    /// Attach secondary locations (replacing any already present).
    pub fn with_related(mut self, related: Vec<RelatedLocation>) -> Self {
        self.related = related;
        self
    }

    /// A stable fingerprint for baseline suppression: rule id, file and
    /// offending node/message — deliberately *not* the line number, so a
    /// baseline survives unrelated edits that shift lines. The file path
    /// is separator-normalized (`\` → `/`, leading `./` stripped) so a
    /// baseline written on one OS or from one invocation directory keeps
    /// matching on another.
    pub fn fingerprint(&self) -> String {
        let mut h = Fnv1a::new();
        h.write(self.rule.id.as_bytes());
        h.write(b"|");
        if let Some(f) = &self.file {
            let normalized = f.replace('\\', "/");
            let normalized = normalized.strip_prefix("./").unwrap_or(&normalized);
            h.write(normalized.as_bytes());
        }
        h.write(b"|");
        match &self.node {
            Some(n) => h.write(n.as_str().as_bytes()),
            None => h.write(self.message.as_bytes()),
        }
        format!("{}-{:016x}", self.rule.id, h.finish())
    }

    /// Sort key giving deterministic output order: file, position, rule
    /// id, then message.
    pub fn sort_key(&self) -> (String, usize, usize, &'static str, String) {
        let (line, column) = self.span.map(|s| (s.line, s.column)).unwrap_or((0, 0));
        (
            self.file.clone().unwrap_or_default(),
            line,
            column,
            self.rule.id,
            self.message.clone(),
        )
    }
}

/// `file:line:col: severity: message [PBxxxx]`, dropping the location
/// parts that are unknown. This is also the text renderer's line format.
impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(file) = &self.file {
            write!(f, "{file}:")?;
        }
        if let Some(span) = &self.span {
            write!(f, "{}:{}:", span.line, span.column)?;
        }
        if self.file.is_some() || self.span.is_some() {
            write!(f, " ")?;
        }
        write!(f, "{}: {} [{}]", self.severity, self.message, self.rule.id)
    }
}

/// FNV-1a 64-bit, the same tiny hash the test seeder uses; good enough
/// for fingerprints and dependency-free.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_RULE: RuleInfo = RuleInfo {
        id: "PB9999",
        slug: "test/rule",
        severity: Severity::Warning,
        summary: "a rule for tests",
    };

    #[test]
    fn severity_orders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_with_and_without_location() {
        let d = Diagnostic::new(&TEST_RULE, "something odd");
        assert_eq!(d.to_string(), "warning: something odd [PB9999]");
        let d = d.with_file("a/b.ttl").with_span(Some(Span::point(4, 2)));
        assert_eq!(
            d.to_string(),
            "a/b.ttl:4:2: warning: something odd [PB9999]"
        );
    }

    #[test]
    fn fingerprint_is_stable_across_line_moves() {
        let a = Diagnostic::new(&TEST_RULE, "m")
            .with_file("f.ttl")
            .with_span(Some(Span::point(1, 1)));
        let b = Diagnostic::new(&TEST_RULE, "m")
            .with_file("f.ttl")
            .with_span(Some(Span::point(99, 7)));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Diagnostic::new(&TEST_RULE, "m").with_file("other.ttl");
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert!(a.fingerprint().starts_with("PB9999-"));
    }

    #[test]
    fn fingerprint_normalizes_path_separators_and_cwd_prefix() {
        let unix = Diagnostic::new(&TEST_RULE, "m").with_file("examples/a/b.ttl");
        let windows = Diagnostic::new(&TEST_RULE, "m").with_file("examples\\a\\b.ttl");
        let dotted = Diagnostic::new(&TEST_RULE, "m").with_file("./examples/a/b.ttl");
        assert_eq!(unix.fingerprint(), windows.fingerprint());
        assert_eq!(unix.fingerprint(), dotted.fingerprint());
    }

    #[test]
    fn related_locations_do_not_change_the_fingerprint() {
        let plain = Diagnostic::new(&TEST_RULE, "m").with_file("f.ttl");
        let related = plain.clone().with_related(vec![RelatedLocation {
            message: "also here".into(),
            file: Some("g.ttl".into()),
            span: Some(Span::point(3, 1)),
        }]);
        assert_eq!(plain.fingerprint(), related.fingerprint());
    }
}
