//! Baseline suppression: a committed list of diagnostic fingerprints that
//! are accepted for now. Linting subtracts the baseline, so CI fails only
//! on *new* findings.
//!
//! The file format is one fingerprint per line; everything after the
//! first whitespace is a comment (the writer emits a human-readable
//! locator there), as are blank lines and lines starting with `#`.

use crate::runner::FileReport;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Parse baseline text into the set of suppressed fingerprints.
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_owned)
        .collect()
}

/// Render a baseline file accepting every current diagnostic, sorted so
/// regeneration is reproducible.
pub fn format_baseline(reports: &[FileReport]) -> String {
    let mut lines: BTreeSet<String> = BTreeSet::new();
    for report in reports {
        for d in &report.diagnostics {
            let mut line = String::new();
            let _ = write!(line, "{} # {}", d.fingerprint(), d.rule.slug);
            if let Some(file) = &d.file {
                let _ = write!(line, " {file}");
            }
            lines.insert(line);
        }
    }
    let mut out = String::from(
        "# provbench lint baseline: one accepted-finding fingerprint per line.\n\
         # Regenerate with `provbench lint --write-baseline <this file> <path>`.\n",
    );
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Drop every diagnostic whose fingerprint is in `baseline`; returns how
/// many were suppressed.
pub fn apply_baseline(reports: &mut [FileReport], baseline: &BTreeSet<String>) -> usize {
    let mut suppressed = 0usize;
    for report in reports {
        let before = report.diagnostics.len();
        report
            .diagnostics
            .retain(|d| !baseline.contains(&d.fingerprint()));
        suppressed += before - report.diagnostics.len();
    }
    suppressed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{Diagnostic, RuleInfo, Severity};

    static RULE: RuleInfo = RuleInfo {
        id: "PB9998",
        slug: "test/baseline",
        severity: Severity::Error,
        summary: "test rule",
    };

    fn report() -> FileReport {
        FileReport {
            path: "a.ttl".into(),
            diagnostics: vec![
                Diagnostic::new(&RULE, "first").with_file("a.ttl"),
                Diagnostic::new(&RULE, "second").with_file("a.ttl"),
            ],
        }
    }

    #[test]
    fn baseline_roundtrip_suppresses_everything() {
        let reports = vec![report()];
        let text = format_baseline(&reports);
        assert!(text.starts_with('#'));
        let baseline = parse_baseline(&text);
        assert_eq!(baseline.len(), 2);
        let mut reports = reports;
        let suppressed = apply_baseline(&mut reports, &baseline);
        assert_eq!(suppressed, 2);
        assert!(reports[0].diagnostics.is_empty());
    }

    #[test]
    fn partial_baseline_keeps_new_findings() {
        let mut reports = vec![report()];
        let only_first = parse_baseline(&reports[0].diagnostics[0].fingerprint());
        let suppressed = apply_baseline(&mut reports, &only_first);
        assert_eq!(suppressed, 1);
        assert_eq!(reports[0].diagnostics.len(), 1);
        assert_eq!(reports[0].diagnostics[0].message, "second");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let baseline = parse_baseline("# comment\n\n  PB0001-abc # trailing words\n");
        assert!(baseline.contains("PB0001-abc"));
        assert_eq!(baseline.len(), 1);
    }
}
