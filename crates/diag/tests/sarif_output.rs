//! Structural validation of the SARIF 2.1.0 renderer: parse the output
//! back and check every property the SARIF schema requires, plus the
//! invariants GitHub code scanning relies on (ruleIndex consistency,
//! regions, fingerprints).

use provbench_diag::json::{parse, Json};
use provbench_diag::{lint_content, render_sarif, FileReport, Registry};

fn sarif_for(docs: &[(&str, &str)]) -> Json {
    let registry = Registry::with_default_rules();
    let reports: Vec<FileReport> = docs
        .iter()
        .map(|(label, content)| FileReport {
            path: (*label).to_owned(),
            diagnostics: lint_content(label, content, &registry),
        })
        .collect();
    parse(&render_sarif(&reports, &registry)).expect("renderer must emit valid JSON")
}

#[test]
fn sarif_log_matches_the_2_1_0_schema_shape() {
    let log = sarif_for(&[
        (
            "cycle.ttl",
            "@prefix prov: <http://www.w3.org/ns/prov#> .
             <http://e/d> prov:wasDerivedFrom <http://e/d> .",
        ),
        ("broken.ttl", "not turtle"),
    ]);

    // Top level: $schema, version, runs.
    assert_eq!(log.get("version").and_then(Json::as_str), Some("2.1.0"));
    assert!(log
        .get("$schema")
        .and_then(Json::as_str)
        .is_some_and(|s| s.contains("sarif-2.1.0")));
    let runs = log
        .get("runs")
        .and_then(Json::as_array)
        .expect("runs array");
    assert_eq!(runs.len(), 1);
    let run = &runs[0];

    // tool.driver: name + the full, sorted rule catalog.
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(
        driver.get("name").and_then(Json::as_str),
        Some("provbench-lint")
    );
    let rules = driver
        .get("rules")
        .and_then(Json::as_array)
        .expect("driver.rules");
    let rule_ids: Vec<&str> = rules
        .iter()
        .filter_map(|r| r.get("id").and_then(Json::as_str))
        .collect();
    assert_eq!(rule_ids.len(), rules.len(), "every rule needs an id");
    let mut sorted = rule_ids.clone();
    sorted.sort();
    assert_eq!(rule_ids, sorted, "rule catalog must be sorted by id");
    assert!(rule_ids.contains(&"PB0001"));
    assert!(rule_ids.contains(&"PB0105"));
    for rule in rules {
        assert!(rule
            .get("shortDescription")
            .and_then(|d| d.get("text"))
            .and_then(Json::as_str)
            .is_some_and(|t| !t.is_empty()));
        assert!(matches!(
            rule.get("defaultConfiguration")
                .and_then(|c| c.get("level"))
                .and_then(Json::as_str),
            Some("note" | "warning" | "error")
        ));
    }

    // results: ruleId/ruleIndex agree with the catalog, every result has
    // a message, a physical location, and our stable fingerprint.
    let results = run
        .get("results")
        .and_then(Json::as_array)
        .expect("results");
    assert!(
        results.len() >= 2,
        "expected the self-derivation and the parse error at least"
    );
    for result in results {
        let rule_id = result.get("ruleId").and_then(Json::as_str).expect("ruleId");
        let index = result
            .get("ruleIndex")
            .and_then(Json::as_num)
            .expect("ruleIndex") as usize;
        assert_eq!(rule_ids[index], rule_id, "ruleIndex must point at ruleId");
        assert!(matches!(
            result.get("level").and_then(Json::as_str),
            Some("note" | "warning" | "error")
        ));
        assert!(result
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .is_some_and(|t| !t.is_empty()));
        let location = &result
            .get("locations")
            .and_then(Json::as_array)
            .expect("locations")[0];
        let physical = location.get("physicalLocation").expect("physicalLocation");
        assert!(physical
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(Json::as_str)
            .is_some_and(|u| u.ends_with(".ttl")));
        let fingerprint = result
            .get("partialFingerprints")
            .and_then(|f| f.get("provbenchFingerprint/v1"))
            .and_then(Json::as_str)
            .expect("stable fingerprint");
        assert!(fingerprint.starts_with(rule_id));
    }

    // The Turtle diagnostics carry regions with 1-based line/column.
    let with_region = results
        .iter()
        .filter_map(|r| {
            r.get("locations")?.as_array()?[0]
                .get("physicalLocation")?
                .get("region")
        })
        .collect::<Vec<_>>();
    assert!(
        !with_region.is_empty(),
        "spanned diagnostics must emit regions"
    );
    for region in with_region {
        let start = region
            .get("startLine")
            .and_then(Json::as_num)
            .expect("startLine");
        let end = region
            .get("endLine")
            .and_then(Json::as_num)
            .expect("endLine");
        assert!(start >= 1.0 && end >= start);
        assert!(region
            .get("startColumn")
            .and_then(Json::as_num)
            .is_some_and(|c| c >= 1.0));
    }
}

#[test]
fn sarif_catalog_is_emitted_even_with_no_findings() {
    let log = sarif_for(&[]);
    let run = &log.get("runs").and_then(Json::as_array).unwrap()[0];
    assert_eq!(
        run.get("results")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(0)
    );
    let rules = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .and_then(Json::as_array)
        .unwrap();
    assert!(
        rules.len() >= 20,
        "full catalog expected, got {}",
        rules.len()
    );
}
