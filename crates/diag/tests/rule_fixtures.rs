//! One good/bad fixture pair per rule ID: the bad document must trigger
//! exactly that rule (with a source span), the good twin must not.

use provbench_diag::{lint_content, Diagnostic, Registry};

const PREFIXES: &str = "\
@prefix prov:   <http://www.w3.org/ns/prov#> .
@prefix wfprov: <http://purl.org/wf4ever/wfprov#> .
@prefix opmw:   <http://www.opmw.org/ontology/> .
@prefix xsd:    <http://www.w3.org/2001/XMLSchema#> .
@prefix ex:     <http://example.org/> .
";

fn lint(label: &str, body: &str) -> Vec<Diagnostic> {
    let doc = format!("{PREFIXES}\n{body}");
    lint_content(label, &doc, &Registry::with_default_rules())
}

/// The bad fixture fires `id` (with file + span); the good one does not.
#[track_caller]
fn check_pair(id: &str, bad: &str, good: &str) {
    let bad_diags = lint("bad.ttl", bad);
    let hit = bad_diags
        .iter()
        .find(|d| d.rule.id == id)
        .unwrap_or_else(|| panic!("{id} did not fire on the bad fixture; got {bad_diags:#?}"));
    assert_eq!(hit.file.as_deref(), Some("bad.ttl"));
    assert!(
        hit.span.is_some(),
        "{id} diagnostic must carry a line/column span; got {hit:#?}"
    );
    let good_diags = lint("good.ttl", good);
    assert!(
        good_diags.iter().all(|d| d.rule.id != id),
        "{id} fired on the good fixture; got {good_diags:#?}"
    );
}

#[test]
fn lint_graph_matches_lint_content_without_spans() {
    // A snapshot-loaded graph lints like the parsed document, minus the
    // source spans (which only exist for concrete syntax).
    let doc = format!(
        "{PREFIXES}\nex:a prov:startedAtTime \"2013-01-01T00:00:10Z\"^^xsd:dateTime ;\n\
         prov:endedAtTime \"2013-01-01T00:00:00Z\"^^xsd:dateTime ."
    );
    let registry = Registry::with_default_rules();
    let from_content = lint_content("run.ttl", &doc, &registry);
    let (graph, _) = provbench_rdf::parse_turtle(&doc).unwrap();
    let from_graph = provbench_diag::lint_graph("run.ttl", &graph, &registry);
    let ids = |diags: &[Diagnostic]| {
        let mut v: Vec<&str> = diags.iter().map(|d| d.rule.id).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(ids(&from_content), ids(&from_graph));
    assert!(from_graph.iter().any(|d| d.rule.id == "PB0101"));
    assert!(from_graph.iter().all(|d| d.span.is_none()));
    assert!(from_graph
        .iter()
        .all(|d| d.file.as_deref() == Some("run.ttl")));
}

#[test]
fn pb0001_parse_error() {
    let diags = lint_content(
        "bad.ttl",
        "this is not turtle at all",
        &Registry::with_default_rules(),
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule.id, "PB0001");
    assert!(diags[0].span.is_some());
    assert_eq!(diags[0].file.as_deref(), Some("bad.ttl"));
    assert!(lint("good.ttl", "ex:x a prov:Entity .")
        .iter()
        .all(|d| d.rule.id != "PB0001"));
}

#[test]
fn pb0101_ends_before_start() {
    check_pair(
        "PB0101",
        "ex:a prov:startedAtTime \"2013-01-01T00:00:10Z\"^^xsd:dateTime ;
              prov:endedAtTime \"2013-01-01T00:00:00Z\"^^xsd:dateTime .",
        "ex:a prov:startedAtTime \"2013-01-01T00:00:00Z\"^^xsd:dateTime ;
              prov:endedAtTime \"2013-01-01T00:00:10Z\"^^xsd:dateTime .",
    );
}

#[test]
fn pb0102_usage_before_generation() {
    // The user activity ended before the generating activity started.
    check_pair(
        "PB0102",
        "ex:user prov:startedAtTime \"2013-01-01T00:00:00Z\"^^xsd:dateTime ;
                 prov:endedAtTime \"2013-01-01T00:01:00Z\"^^xsd:dateTime ;
                 prov:used ex:d .
         ex:gen prov:startedAtTime \"2013-01-01T01:00:00Z\"^^xsd:dateTime ;
                prov:endedAtTime \"2013-01-01T01:01:00Z\"^^xsd:dateTime .
         ex:d prov:wasGeneratedBy ex:gen .",
        "ex:user prov:startedAtTime \"2013-01-01T02:00:00Z\"^^xsd:dateTime ;
                 prov:endedAtTime \"2013-01-01T02:01:00Z\"^^xsd:dateTime ;
                 prov:used ex:d .
         ex:gen prov:startedAtTime \"2013-01-01T01:00:00Z\"^^xsd:dateTime ;
                prov:endedAtTime \"2013-01-01T01:01:00Z\"^^xsd:dateTime .
         ex:d prov:wasGeneratedBy ex:gen .",
    );
}

#[test]
fn pb0103_multiple_generation() {
    check_pair(
        "PB0103",
        "ex:d prov:wasGeneratedBy ex:a1 , ex:a2 .",
        "ex:d prov:wasGeneratedBy ex:a1 .",
    );
}

#[test]
fn pb0104_derivation_cycle() {
    let bad = "ex:a prov:wasDerivedFrom ex:b .
               ex:b prov:wasDerivedFrom ex:c .
               ex:c prov:wasDerivedFrom ex:a .";
    check_pair(
        "PB0104",
        bad,
        "ex:a prov:wasDerivedFrom ex:b .
         ex:b prov:wasDerivedFrom ex:c .",
    );
    // A purely derivational cycle belongs to PB0104, not PB0107.
    assert!(lint("bad.ttl", bad).iter().all(|d| d.rule.id != "PB0107"));
}

#[test]
fn pb0105_self_derivation() {
    check_pair(
        "PB0105",
        "ex:d prov:wasDerivedFrom ex:d .",
        "ex:d prov:wasDerivedFrom ex:s .",
    );
}

#[test]
fn pb0106_self_communication() {
    check_pair(
        "PB0106",
        "ex:a prov:wasInformedBy ex:a .",
        "ex:a prov:wasInformedBy ex:b .",
    );
}

#[test]
fn pb0107_event_ordering_cycle() {
    // gen(d) ≤ start(a) ≤ gen(s) < gen(d): impossible, yet derivation-
    // acyclic — only the event network sees it.
    let bad = "ex:a prov:wasStartedBy ex:d .
               ex:s prov:wasGeneratedBy ex:a .
               ex:d prov:wasDerivedFrom ex:s .";
    check_pair(
        "PB0107",
        bad,
        "ex:a prov:wasStartedBy ex:s .
         ex:s2 prov:wasGeneratedBy ex:a .
         ex:d prov:wasDerivedFrom ex:s .",
    );
    // And it is not misreported as a derivation cycle.
    assert!(lint("bad.ttl", bad).iter().all(|d| d.rule.id != "PB0104"));
}

#[test]
fn pb0108_entity_activity_disjoint() {
    check_pair(
        "PB0108",
        "ex:x a prov:Entity , prov:Activity .",
        "ex:x a prov:Entity .
         ex:y a prov:Activity .",
    );
}

/// A fully profile-conformant Taverna process run, as a reusable body.
const TAVERNA_CLEAN: &str = "\
ex:workflow-run a wfprov:WorkflowRun ;
    wfprov:describedByWorkflow ex:workflow .
ex:proc a wfprov:ProcessRun ;
    wfprov:wasPartOfWorkflowRun ex:workflow-run ;
    wfprov:describedByProcess ex:workflow-proc ;
    prov:startedAtTime \"2013-01-01T00:00:00Z\"^^xsd:dateTime ;
    prov:endedAtTime \"2013-01-01T00:00:10Z\"^^xsd:dateTime .
ex:art a wfprov:Artifact ;
    prov:value \"42\" .
";

#[test]
fn pb0201_taverna_process_run_parent() {
    check_pair(
        "PB0201",
        "ex:orphan a wfprov:ProcessRun ;
             wfprov:describedByProcess ex:workflow-proc ;
             prov:startedAtTime \"2013-01-01T00:00:00Z\"^^xsd:dateTime ;
             prov:endedAtTime \"2013-01-01T00:00:10Z\"^^xsd:dateTime .",
        TAVERNA_CLEAN,
    );
}

#[test]
fn pb0202_taverna_process_run_times() {
    check_pair(
        "PB0202",
        "ex:workflow-run a wfprov:WorkflowRun ;
             wfprov:describedByWorkflow ex:workflow .
         ex:proc a wfprov:ProcessRun ;
             wfprov:wasPartOfWorkflowRun ex:workflow-run ;
             wfprov:describedByProcess ex:workflow-proc .",
        TAVERNA_CLEAN,
    );
}

#[test]
fn pb0203_taverna_process_run_description() {
    check_pair(
        "PB0203",
        "ex:workflow-run a wfprov:WorkflowRun ;
             wfprov:describedByWorkflow ex:workflow .
         ex:proc a wfprov:ProcessRun ;
             wfprov:wasPartOfWorkflowRun ex:workflow-run ;
             prov:startedAtTime \"2013-01-01T00:00:00Z\"^^xsd:dateTime ;
             prov:endedAtTime \"2013-01-01T00:00:10Z\"^^xsd:dateTime .",
        TAVERNA_CLEAN,
    );
}

#[test]
fn pb0204_taverna_run_description() {
    check_pair(
        "PB0204",
        "ex:workflow-run a wfprov:WorkflowRun .",
        TAVERNA_CLEAN,
    );
}

#[test]
fn pb0205_taverna_artifact_value() {
    check_pair("PB0205", "ex:art a wfprov:Artifact .", TAVERNA_CLEAN);
}

#[test]
fn pb0206_taverna_profile_purity() {
    check_pair(
        "PB0206",
        "ex:art a wfprov:Artifact ;
             prov:value \"42\" ;
             prov:wasAttributedTo ex:agent .",
        TAVERNA_CLEAN,
    );
}

/// A fully profile-conformant Wings execution, as a reusable body.
const WINGS_CLEAN: &str = "\
ex:account a opmw:WorkflowExecutionAccount .
ex:proc a opmw:WorkflowExecutionProcess ;
    opmw:belongsToAccount ex:account ;
    opmw:hasExecutableComponent ex:component ;
    opmw:hasStatus \"SUCCESS\" .
ex:art a opmw:WorkflowExecutionArtifact ;
    opmw:belongsToAccount ex:account ;
    prov:atLocation \"file:///data/a.txt\" .
";

#[test]
fn pb0301_wings_process_account() {
    check_pair(
        "PB0301",
        "ex:proc a opmw:WorkflowExecutionProcess ;
             opmw:hasExecutableComponent ex:component ;
             opmw:hasStatus \"SUCCESS\" .",
        WINGS_CLEAN,
    );
}

#[test]
fn pb0302_wings_process_component() {
    check_pair(
        "PB0302",
        "ex:proc a opmw:WorkflowExecutionProcess ;
             opmw:belongsToAccount ex:account ;
             opmw:hasStatus \"SUCCESS\" .",
        WINGS_CLEAN,
    );
}

#[test]
fn pb0303_wings_process_status() {
    check_pair(
        "PB0303",
        "ex:proc a opmw:WorkflowExecutionProcess ;
             opmw:belongsToAccount ex:account ;
             opmw:hasExecutableComponent ex:component .",
        WINGS_CLEAN,
    );
}

#[test]
fn pb0304_wings_artifact_location() {
    check_pair(
        "PB0304",
        "ex:art a opmw:WorkflowExecutionArtifact ;
             opmw:belongsToAccount ex:account .",
        WINGS_CLEAN,
    );
}

#[test]
fn pb0305_wings_artifact_account() {
    check_pair(
        "PB0305",
        "ex:art a opmw:WorkflowExecutionArtifact ;
             prov:atLocation \"file:///data/a.txt\" .",
        WINGS_CLEAN,
    );
}

#[test]
fn pb0306_wings_profile_purity() {
    check_pair(
        "PB0306",
        "ex:proc a opmw:WorkflowExecutionProcess ;
             opmw:belongsToAccount ex:account ;
             opmw:hasExecutableComponent ex:component ;
             opmw:hasStatus \"SUCCESS\" ;
             prov:startedAtTime \"2013-01-01T00:00:00Z\"^^xsd:dateTime .",
        WINGS_CLEAN,
    );
}

#[test]
fn pb0401_unknown_term() {
    check_pair(
        "PB0401",
        "ex:proc wfprov:describedByParrot ex:x .",
        "ex:proc wfprov:describedByProcess ex:x .",
    );
}

#[test]
fn pb0402_cross_profile_term() {
    // A clearly-Taverna file that also slips in one OPMW property.
    let bad = format!("{TAVERNA_CLEAN}\nex:proc opmw:hasStatus \"SUCCESS\" .");
    check_pair("PB0402", &bad, TAVERNA_CLEAN);
}

#[test]
fn pb0403_outside_inventory() {
    check_pair(
        "PB0403",
        "ex:old prov:wasInvalidatedBy ex:cleanup .",
        "ex:out prov:wasGeneratedBy ex:proc .",
    );
}

#[test]
fn clean_fixtures_are_fully_clean() {
    for (label, body) in [("taverna.ttl", TAVERNA_CLEAN), ("wings.ttl", WINGS_CLEAN)] {
        let diags = lint(label, body);
        assert!(diags.is_empty(), "{label} expected clean, got {diags:#?}");
    }
}

#[test]
fn diagnostics_are_ordered_and_stable() {
    let body = "ex:d prov:wasDerivedFrom ex:d .
                ex:a prov:wasInformedBy ex:a .";
    let a = lint("a.ttl", body);
    let b = lint("a.ttl", body);
    assert_eq!(a, b);
    let mut sorted = a.clone();
    sorted.sort_by_key(|d| d.sort_key());
    assert_eq!(a, sorted, "registry output must already be sorted");
}
