//! Mapping PROV [`Document`]s to RDF graphs/datasets (PROV-O).
//!
//! The mapping is uniform except for one profile choice that reproduces
//! the asymmetry the paper reports in Table 3: how plans are expressed.
//! Taverna's export attaches the workflow template through a qualified
//! association carrying `prov:hadPlan` (and never types it `prov:Plan`),
//! while Wings types the template `prov:Plan` directly.

use crate::model::{Activity, Agent, AgentKind, Document, Entity, Relation};
use provbench_rdf::{BlankNode, Dataset, Graph, Iri, Literal, Subject, Term, Triple};
use provbench_vocab::{self as vocab, foaf, prov, rdfs};

/// How `prov:wasAssociatedWith` plans are serialized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanStyle {
    /// Taverna style: qualified association with `prov:hadPlan`; the plan
    /// is **not** typed `prov:Plan` (Table 3's starred entry).
    QualifiedHadPlan,
    /// Wings style: the plan is typed `prov:Plan` directly.
    TypedPlan,
}

/// Serialization profile options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileOptions {
    /// Plan expression style.
    pub plan_style: PlanStyle,
    /// Discriminator mixed into generated blank-node labels so that
    /// traces from different runs can be merged into one dataset without
    /// conflating their qualified-pattern helper nodes. `0` keeps the
    /// plain `_:qN` labels.
    pub blank_discriminator: u64,
}

impl ProfileOptions {
    /// The Taverna plugin profile.
    pub fn taverna() -> Self {
        ProfileOptions {
            plan_style: PlanStyle::QualifiedHadPlan,
            blank_discriminator: 0,
        }
    }

    /// The Wings/OPMW publisher profile.
    pub fn wings() -> Self {
        ProfileOptions {
            plan_style: PlanStyle::TypedPlan,
            blank_discriminator: 0,
        }
    }

    /// Set the blank-node label discriminator.
    pub fn with_blank_discriminator(mut self, discriminator: u64) -> Self {
        self.blank_discriminator = discriminator;
        self
    }
}

struct Emitter<'a> {
    graph: &'a mut Graph,
    opts: ProfileOptions,
    blank_counter: u64,
}

impl Emitter<'_> {
    fn triple(&mut self, s: impl Into<Subject>, p: Iri, o: impl Into<Term>) {
        self.graph.insert(Triple::new(s, p, o));
    }

    fn fresh_blank(&mut self) -> BlankNode {
        let label = if self.opts.blank_discriminator == 0 {
            format!("q{}", self.blank_counter)
        } else {
            format!(
                "q{:08x}x{}",
                self.opts.blank_discriminator, self.blank_counter
            )
        };
        let b = BlankNode::new(label).expect("valid label");
        self.blank_counter += 1;
        b
    }

    fn entity(&mut self, e: &Entity) {
        self.triple(e.id.clone(), vocab::rdf_type(), prov::entity());
        for ty in &e.types {
            self.triple(e.id.clone(), vocab::rdf_type(), ty.clone());
        }
        if let Some(label) = &e.label {
            self.triple(e.id.clone(), rdfs::label(), Literal::simple(label));
        }
        if let Some(value) = &e.value {
            self.triple(e.id.clone(), prov::value(), value.clone());
        }
        if let Some(location) = &e.location {
            self.triple(e.id.clone(), prov::at_location(), location.clone());
        }
        if let Some(at) = &e.generated_at {
            self.triple(
                e.id.clone(),
                prov::generated_at_time(),
                Literal::date_time(at),
            );
        }
        for (p, o) in &e.attributes {
            self.triple(e.id.clone(), p.clone(), o.clone());
        }
    }

    fn activity(&mut self, a: &Activity) {
        self.triple(a.id.clone(), vocab::rdf_type(), prov::activity());
        for ty in &a.types {
            self.triple(a.id.clone(), vocab::rdf_type(), ty.clone());
        }
        if let Some(label) = &a.label {
            self.triple(a.id.clone(), rdfs::label(), Literal::simple(label));
        }
        if let Some(at) = &a.started {
            self.triple(
                a.id.clone(),
                prov::started_at_time(),
                Literal::date_time(at),
            );
        }
        if let Some(at) = &a.ended {
            self.triple(a.id.clone(), prov::ended_at_time(), Literal::date_time(at));
        }
        if let Some(location) = &a.location {
            self.triple(a.id.clone(), prov::at_location(), location.clone());
        }
        for (p, o) in &a.attributes {
            self.triple(a.id.clone(), p.clone(), o.clone());
        }
    }

    fn agent(&mut self, a: &Agent) {
        self.triple(a.id.clone(), vocab::rdf_type(), prov::agent());
        let subclass = match a.kind {
            AgentKind::Person => Some(prov::person()),
            AgentKind::Software => Some(prov::software_agent()),
            AgentKind::Organization => Some(prov::organization()),
            AgentKind::Plain => None,
        };
        if let Some(c) = subclass {
            self.triple(a.id.clone(), vocab::rdf_type(), c);
        }
        for ty in &a.types {
            self.triple(a.id.clone(), vocab::rdf_type(), ty.clone());
        }
        if let Some(name) = &a.name {
            self.triple(a.id.clone(), foaf::name(), Literal::simple(name));
        }
        for (p, o) in &a.attributes {
            self.triple(a.id.clone(), p.clone(), o.clone());
        }
    }

    fn relation(&mut self, r: &Relation) {
        match r {
            Relation::Used {
                activity,
                entity,
                time,
            } => {
                self.triple(activity.clone(), prov::used(), entity.clone());
                if let Some(t) = time {
                    let q = self.fresh_blank();
                    self.triple(activity.clone(), prov::qualified_usage(), q.clone());
                    self.triple(q.clone(), vocab::rdf_type(), prov::usage());
                    self.triple(q.clone(), prov::entity_prop(), entity.clone());
                    self.triple(q, prov::at_time(), Literal::date_time(t));
                }
            }
            Relation::WasGeneratedBy {
                entity,
                activity,
                time,
            } => {
                self.triple(entity.clone(), prov::was_generated_by(), activity.clone());
                if let Some(t) = time {
                    let q = self.fresh_blank();
                    self.triple(entity.clone(), prov::qualified_generation(), q.clone());
                    self.triple(q.clone(), vocab::rdf_type(), prov::generation());
                    self.triple(q.clone(), prov::activity_prop(), activity.clone());
                    self.triple(q, prov::at_time(), Literal::date_time(t));
                }
            }
            Relation::WasAssociatedWith {
                activity,
                agent,
                plan,
            } => {
                self.triple(activity.clone(), prov::was_associated_with(), agent.clone());
                if let Some(plan) = plan {
                    match self.opts.plan_style {
                        PlanStyle::QualifiedHadPlan => {
                            let q = self.fresh_blank();
                            self.triple(activity.clone(), prov::qualified_association(), q.clone());
                            self.triple(q.clone(), vocab::rdf_type(), prov::association());
                            self.triple(q.clone(), prov::agent_prop(), agent.clone());
                            self.triple(q, prov::had_plan(), plan.clone());
                        }
                        PlanStyle::TypedPlan => {
                            self.triple(plan.clone(), vocab::rdf_type(), prov::plan());
                        }
                    }
                }
            }
            Relation::WasAttributedTo { entity, agent } => {
                self.triple(entity.clone(), prov::was_attributed_to(), agent.clone());
            }
            Relation::ActedOnBehalfOf {
                delegate,
                responsible,
            } => {
                self.triple(
                    delegate.clone(),
                    prov::acted_on_behalf_of(),
                    responsible.clone(),
                );
            }
            Relation::WasDerivedFrom { generated, used } => {
                self.triple(generated.clone(), prov::was_derived_from(), used.clone());
            }
            Relation::HadPrimarySource { derived, source } => {
                self.triple(derived.clone(), prov::had_primary_source(), source.clone());
            }
            Relation::WasInformedBy {
                informed,
                informant,
            } => {
                self.triple(informed.clone(), prov::was_informed_by(), informant.clone());
            }
            Relation::WasInfluencedBy {
                influencee,
                influencer,
            } => {
                self.triple(
                    influencee.clone(),
                    prov::was_influenced_by(),
                    influencer.clone(),
                );
            }
            Relation::Other {
                subject,
                predicate,
                object,
            } => {
                self.triple(subject.clone(), predicate.clone(), object.clone());
            }
        }
    }

    fn document(&mut self, doc: &Document) {
        for e in doc.entities.values() {
            self.entity(e);
        }
        for a in doc.activities.values() {
            self.activity(a);
        }
        for a in doc.agents.values() {
            self.agent(a);
        }
        for r in &doc.relations {
            self.relation(r);
        }
    }
}

/// Map a document (ignoring bundles) to a single graph.
pub fn document_to_graph(doc: &Document, opts: ProfileOptions) -> Graph {
    let mut graph = Graph::new();
    let mut em = Emitter {
        graph: &mut graph,
        opts,
        blank_counter: 0,
    };
    em.document(doc);
    graph
}

/// Map a document to a dataset: top-level statements go to the default
/// graph; each bundle becomes a named graph whose name is typed
/// `prov:Bundle` (and `prov:Entity`) in the default graph.
pub fn document_to_dataset(doc: &Document, opts: ProfileOptions) -> Dataset {
    let mut ds = Dataset::new();
    {
        let mut em = Emitter {
            graph: ds.default_graph_mut(),
            opts,
            blank_counter: 0,
        };
        em.document(doc);
    }
    for (i, (bundle_id, contents)) in doc.bundles.iter().enumerate() {
        ds.default_graph_mut().insert(Triple::new(
            bundle_id.clone(),
            vocab::rdf_type(),
            prov::bundle(),
        ));
        ds.default_graph_mut().insert(Triple::new(
            bundle_id.clone(),
            vocab::rdf_type(),
            prov::entity(),
        ));
        let graph = ds.named_graph_mut(Subject::Iri(bundle_id.clone()));
        let mut em = Emitter {
            graph,
            opts,
            // Offset keeps qualified-pattern blank labels unique per bundle.
            blank_counter: (i as u64 + 1) * 1_000_000,
        };
        em.document(contents);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DocumentBuilder;
    use provbench_rdf::DateTime;

    fn sample(plan: bool) -> Document {
        let mut b = DocumentBuilder::new("http://e/run/");
        let data = b.entity("data").label("in").id();
        let out = b.entity("out").id();
        let act = b
            .activity("step")
            .started(DateTime::from_unix_millis(0))
            .ended(DateTime::from_unix_millis(1000))
            .id();
        let engine = b.agent("engine", AgentKind::Software).name("sim").id();
        let template = if plan {
            Some(b.entity("template").id())
        } else {
            None
        };
        b.used(&act, &data, None);
        b.generated(&out, &act, None);
        b.associated(&act, &engine, template.as_ref());
        b.build()
    }

    fn has(g: &Graph, p: &Iri) -> bool {
        g.triples_matching(None, Some(p), None).next().is_some()
    }

    fn has_type(g: &Graph, ty: &Iri) -> bool {
        g.triples_matching(None, Some(&vocab::rdf_type()), Some(&ty.clone().into()))
            .next()
            .is_some()
    }

    #[test]
    fn uniform_parts_of_the_mapping() {
        let g = document_to_graph(&sample(false), ProfileOptions::taverna());
        assert!(has_type(&g, &prov::entity()));
        assert!(has_type(&g, &prov::activity()));
        assert!(has_type(&g, &prov::agent()));
        assert!(has_type(&g, &prov::software_agent()));
        assert!(has(&g, &prov::used()));
        assert!(has(&g, &prov::was_generated_by()));
        assert!(has(&g, &prov::was_associated_with()));
        assert!(has(&g, &prov::started_at_time()));
        assert!(has(&g, &prov::ended_at_time()));
        assert!(has(&g, &foaf::name()));
        assert!(has(&g, &rdfs::label()));
    }

    #[test]
    fn taverna_plan_style_uses_had_plan_without_plan_typing() {
        let g = document_to_graph(&sample(true), ProfileOptions::taverna());
        assert!(has(&g, &prov::had_plan()));
        assert!(has(&g, &prov::qualified_association()));
        assert!(!has_type(&g, &prov::plan()));
    }

    #[test]
    fn wings_plan_style_types_the_plan() {
        let g = document_to_graph(&sample(true), ProfileOptions::wings());
        assert!(!has(&g, &prov::had_plan()));
        assert!(has_type(&g, &prov::plan()));
    }

    #[test]
    fn qualified_usage_carries_time() {
        let mut b = DocumentBuilder::new("http://e/");
        let d = b.entity("d").id();
        let a = b.activity("a").id();
        b.used(&a, &d, Some(DateTime::from_unix_millis(42_000)));
        let g = document_to_graph(&b.build(), ProfileOptions::taverna());
        assert!(has(&g, &prov::qualified_usage()));
        assert!(has(&g, &prov::at_time()));
    }

    #[test]
    fn bundles_become_named_graphs() {
        let mut inner = DocumentBuilder::new("http://e/inner/");
        inner.entity("x");
        let mut b = DocumentBuilder::new("http://e/");
        let bid = b.mint("account1");
        b.bundle(bid.clone(), inner.build());
        let ds = document_to_dataset(&b.build(), ProfileOptions::wings());
        assert!(has_type(ds.default_graph(), &prov::bundle()));
        let g = ds.named_graph(&Subject::Iri(bid)).unwrap();
        assert!(has_type(g, &prov::entity()));
    }

    #[test]
    fn empty_document_maps_to_empty_graph() {
        let g = document_to_graph(&Document::new(), ProfileOptions::taverna());
        assert!(g.is_empty());
    }
}
