//! PROV-N (the W3C PROV notation) serialization of [`Document`]s.
//!
//! The corpus itself is RDF, but PROV-N is the human-readable notation
//! the PROV family specifies; exporting it makes traces easy to eyeball
//! and diff. Writer only — the corpus never needs to parse PROV-N.

use crate::model::{Activity, Agent, AgentKind, Document, Entity, Relation};
use provbench_rdf::{Iri, Literal, Term};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Assigns qualified names to IRIs, inventing `ns1:`, `ns2:`… prefixes
/// for namespaces not predeclared.
pub(crate) struct Namer {
    by_ns: BTreeMap<String, String>,
    counter: usize,
}

impl Namer {
    pub(crate) fn new() -> Self {
        let mut by_ns = BTreeMap::new();
        for (prefix, ns) in [
            ("prov", "http://www.w3.org/ns/prov#"),
            ("rdfs", "http://www.w3.org/2000/01/rdf-schema#"),
            ("xsd", "http://www.w3.org/2001/XMLSchema#"),
            ("wfprov", "http://purl.org/wf4ever/wfprov#"),
            ("wfdesc", "http://purl.org/wf4ever/wfdesc#"),
            ("opmw", "http://www.opmw.org/ontology/"),
            ("foaf", "http://xmlns.com/foaf/0.1/"),
            ("tavernaprov", "http://ns.taverna.org.uk/2012/tavernaprov/"),
        ] {
            by_ns.insert(ns.to_owned(), prefix.to_owned());
        }
        Namer { by_ns, counter: 0 }
    }

    /// Split an IRI at the last `#` or `/` into (namespace, local).
    fn split(iri: &str) -> (String, String) {
        match iri.rfind(['#', '/']) {
            Some(i) if i + 1 < iri.len() => (iri[..=i].to_owned(), iri[i + 1..].to_owned()),
            _ => (iri.to_owned(), String::new()),
        }
    }

    pub(crate) fn qname(&mut self, iri: &Iri) -> String {
        let (ns, local) = Self::split(iri.as_str());
        let safe_local = local
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'));
        if local.is_empty() || !safe_local {
            // Fall back to a whole-IRI prefix binding.
            let prefix = self.prefix_for(iri.as_str());
            return format!("{prefix}:resource");
        }
        let prefix = self.prefix_for(&ns);
        format!("{prefix}:{local}")
    }

    fn prefix_for(&mut self, ns: &str) -> String {
        if let Some(p) = self.by_ns.get(ns) {
            return p.clone();
        }
        self.counter += 1;
        let p = format!("ns{}", self.counter);
        self.by_ns.insert(ns.to_owned(), p.clone());
        p
    }

    /// The accumulated `(prefix, namespace)` table, prefix-sorted.
    pub(crate) fn prefix_table(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = self
            .by_ns
            .iter()
            .map(|(ns, p)| (p.clone(), ns.clone()))
            .collect();
        pairs.sort();
        pairs
    }

    pub(crate) fn declarations(&self) -> String {
        let mut out = String::new();
        let mut pairs: Vec<(&String, &String)> = self.by_ns.iter().map(|(ns, p)| (p, ns)).collect();
        pairs.sort();
        for (p, ns) in pairs {
            let _ = writeln!(out, "  prefix {p} <{ns}>");
        }
        out
    }
}

fn escape(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn literal_str(l: &Literal, namer: &mut Namer) -> String {
    if let Some(tag) = l.language() {
        format!("\"{}\"@{tag}", escape(l.lexical()))
    } else if l.is_simple() {
        format!("\"{}\"", escape(l.lexical()))
    } else {
        format!(
            "\"{}\" %% {}",
            escape(l.lexical()),
            namer.qname(&l.datatype())
        )
    }
}

fn attr_list(pairs: &[(String, String)]) -> String {
    if pairs.is_empty() {
        String::new()
    } else {
        let inner: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!(", [{}]", inner.join(", "))
    }
}

fn entity_line(e: &Entity, namer: &mut Namer, out: &mut String) {
    let mut attrs = Vec::new();
    for ty in &e.types {
        attrs.push(("prov:type".to_owned(), format!("'{}'", namer.qname(ty))));
    }
    if let Some(label) = &e.label {
        attrs.push(("rdfs:label".to_owned(), format!("\"{}\"", escape(label))));
    }
    if let Some(value) = &e.value {
        attrs.push(("prov:value".to_owned(), literal_str(value, namer)));
    }
    if let Some(loc) = &e.location {
        attrs.push((
            "prov:atLocation".to_owned(),
            format!("'{}'", namer.qname(loc)),
        ));
    }
    let id = namer.qname(&e.id);
    let _ = writeln!(out, "  entity({id}{})", attr_list(&attrs));
}

fn activity_line(a: &Activity, namer: &mut Namer, out: &mut String) {
    let mut attrs = Vec::new();
    for ty in &a.types {
        attrs.push(("prov:type".to_owned(), format!("'{}'", namer.qname(ty))));
    }
    if let Some(label) = &a.label {
        attrs.push(("rdfs:label".to_owned(), format!("\"{}\"", escape(label))));
    }
    let id = namer.qname(&a.id);
    let time = |t: &Option<provbench_rdf::DateTime>| t.map_or("-".to_owned(), |d| d.to_string());
    let _ = writeln!(
        out,
        "  activity({id}, {}, {}{})",
        time(&a.started),
        time(&a.ended),
        attr_list(&attrs)
    );
}

fn agent_line(a: &Agent, namer: &mut Namer, out: &mut String) {
    let mut attrs = Vec::new();
    let kind = match a.kind {
        AgentKind::Person => Some("prov:Person"),
        AgentKind::Software => Some("prov:SoftwareAgent"),
        AgentKind::Organization => Some("prov:Organization"),
        AgentKind::Plain => None,
    };
    if let Some(k) = kind {
        attrs.push(("prov:type".to_owned(), format!("'{k}'")));
    }
    if let Some(name) = &a.name {
        attrs.push(("foaf:name".to_owned(), format!("\"{}\"", escape(name))));
    }
    let id = namer.qname(&a.id);
    let _ = writeln!(out, "  agent({id}{})", attr_list(&attrs));
}

fn relation_line(r: &Relation, namer: &mut Namer, out: &mut String) {
    let q = |iri: &Iri, namer: &mut Namer| namer.qname(iri);
    match r {
        Relation::Used {
            activity,
            entity,
            time,
        } => {
            let t = time.map_or("-".to_owned(), |d| d.to_string());
            let (a, e) = (q(activity, namer), q(entity, namer));
            let _ = writeln!(out, "  used({a}, {e}, {t})");
        }
        Relation::WasGeneratedBy {
            entity,
            activity,
            time,
        } => {
            let t = time.map_or("-".to_owned(), |d| d.to_string());
            let (e, a) = (q(entity, namer), q(activity, namer));
            let _ = writeln!(out, "  wasGeneratedBy({e}, {a}, {t})");
        }
        Relation::WasAssociatedWith {
            activity,
            agent,
            plan,
        } => {
            let p = plan.as_ref().map_or("-".to_owned(), |p| q(p, namer));
            let (a, g) = (q(activity, namer), q(agent, namer));
            let _ = writeln!(out, "  wasAssociatedWith({a}, {g}, {p})");
        }
        Relation::WasAttributedTo { entity, agent } => {
            let (e, g) = (q(entity, namer), q(agent, namer));
            let _ = writeln!(out, "  wasAttributedTo({e}, {g})");
        }
        Relation::ActedOnBehalfOf {
            delegate,
            responsible,
        } => {
            let (d, rr) = (q(delegate, namer), q(responsible, namer));
            let _ = writeln!(out, "  actedOnBehalfOf({d}, {rr})");
        }
        Relation::WasDerivedFrom { generated, used } => {
            let (g, u) = (q(generated, namer), q(used, namer));
            let _ = writeln!(out, "  wasDerivedFrom({g}, {u})");
        }
        Relation::HadPrimarySource { derived, source } => {
            let (d, s) = (q(derived, namer), q(source, namer));
            let _ = writeln!(
                out,
                "  wasDerivedFrom({d}, {s}, -, -, -, [prov:type='prov:PrimarySource'])"
            );
        }
        Relation::WasInformedBy {
            informed,
            informant,
        } => {
            let (a, b) = (q(informed, namer), q(informant, namer));
            let _ = writeln!(out, "  wasInformedBy({a}, {b})");
        }
        Relation::WasInfluencedBy {
            influencee,
            influencer,
        } => {
            let (a, b) = (q(influencee, namer), q(influencer, namer));
            let _ = writeln!(out, "  wasInfluencedBy({a}, {b})");
        }
        Relation::Other {
            subject,
            predicate,
            object,
        } => {
            // PROV-N has no general triples; record as a comment so the
            // document stays information-complete for a human reader.
            let s = q(subject, namer);
            let p = q(predicate, namer);
            let o = match object {
                Term::Iri(i) => q(i, namer),
                Term::Blank(b) => format!("_:{}", b.label()),
                Term::Literal(l) => literal_str(l, namer),
            };
            let _ = writeln!(out, "  // {s} {p} {o}");
        }
    }
}

fn body(doc: &Document, namer: &mut Namer, out: &mut String) {
    for e in doc.entities.values() {
        entity_line(e, namer, out);
    }
    for a in doc.activities.values() {
        activity_line(a, namer, out);
    }
    for a in doc.agents.values() {
        agent_line(a, namer, out);
    }
    for r in &doc.relations {
        relation_line(r, namer, out);
    }
}

/// Serialize a document (including bundles) as PROV-N.
pub fn write_provn(doc: &Document) -> String {
    let mut namer = Namer::new();
    let mut content = String::new();
    body(doc, &mut namer, &mut content);
    for (id, bundle) in &doc.bundles {
        let name = namer.qname(id);
        let _ = writeln!(content, "  bundle {name}");
        let mut inner = String::new();
        body(bundle, &mut namer, &mut inner);
        for line in inner.lines() {
            let _ = writeln!(content, "  {line}");
        }
        let _ = writeln!(content, "  endBundle");
    }
    // Prefixes are collected while rendering, so declare them last but
    // print them first.
    format!("document\n{}{content}endDocument\n", namer.declarations())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DocumentBuilder;
    use provbench_rdf::DateTime;

    fn sample() -> Document {
        let mut b = DocumentBuilder::new("http://example.org/run/");
        let data = b
            .entity("data")
            .label("input")
            .value(Literal::integer(5))
            .id();
        let out = b.entity("out").id();
        let act = b
            .activity("step")
            .started(DateTime::from_unix_millis(0))
            .ended(DateTime::from_unix_millis(1_000))
            .id();
        let engine = b.agent("engine", AgentKind::Software).name("sim").id();
        b.used(&act, &data, None);
        b.generated(&out, &act, Some(DateTime::from_unix_millis(900)));
        b.associated(&act, &engine, Some(&data));
        b.primary_source(&out, &data);
        b.build()
    }

    #[test]
    fn renders_a_document() {
        let provn = write_provn(&sample());
        assert!(provn.starts_with("document\n"));
        assert!(provn.ends_with("endDocument\n"));
        assert!(provn.contains("prefix prov <http://www.w3.org/ns/prov#>"));
        assert!(provn.contains("entity(ns1:data, [rdfs:label=\"input\""));
        assert!(provn.contains("activity(ns1:step, 1970-01-01T00:00:00Z, 1970-01-01T00:00:01Z"));
        assert!(provn.contains("agent(ns1:engine, [prov:type='prov:SoftwareAgent'"));
        assert!(provn.contains("used(ns1:step, ns1:data, -)"));
        assert!(provn.contains("wasGeneratedBy(ns1:out, ns1:step, 1970-01-01T00:00:00.900Z)"));
        assert!(provn.contains("wasAssociatedWith(ns1:step, ns1:engine, ns1:data)"));
        assert!(provn.contains("[prov:type='prov:PrimarySource']"));
    }

    #[test]
    fn bundles_nest() {
        let mut outer = DocumentBuilder::new("http://example.org/");
        let inner = sample();
        let id = outer.mint("account1");
        outer.bundle(id, inner);
        let provn = write_provn(&outer.build());
        assert!(provn.contains("bundle ns1:account1"));
        assert!(provn.contains("endBundle"));
        // The inner content is indented inside the bundle block.
        assert!(provn.contains("    entity("));
    }

    #[test]
    fn is_deterministic() {
        assert_eq!(write_provn(&sample()), write_provn(&sample()));
    }

    #[test]
    fn escapes_strings() {
        let mut b = DocumentBuilder::new("http://example.org/");
        b.entity("e").label("line1\n\"quoted\"");
        let provn = write_provn(&b.build());
        assert!(provn.contains("\\n"));
        assert!(provn.contains("\\\"quoted\\\""));
    }

    #[test]
    fn namer_handles_degenerate_iris() {
        let mut namer = Namer::new();
        // Known namespace.
        assert_eq!(
            namer.qname(&Iri::new_unchecked("http://www.w3.org/ns/prov#Entity")),
            "prov:Entity"
        );
        // Unknown namespaces get sequential prefixes, stably.
        let a = namer.qname(&Iri::new_unchecked("http://x.example/thing"));
        let b = namer.qname(&Iri::new_unchecked("http://x.example/other"));
        assert_eq!(a.split(':').next(), b.split(':').next());
        // Trailing-slash IRIs (empty local) fall back to a whole-IRI bind.
        let c = namer.qname(&Iri::new_unchecked("http://y.example/path/"));
        assert!(c.ends_with(":resource"));
        // Unsafe locals (percent signs) too.
        let d = namer.qname(&Iri::new_unchecked("http://z.example/a%20b"));
        assert!(d.ends_with(":resource"));
    }

    #[test]
    fn empty_document_is_wellformed() {
        let provn = write_provn(&Document::new());
        assert!(provn.starts_with("document\n"));
        assert!(provn.ends_with("endDocument\n"));
    }
}
