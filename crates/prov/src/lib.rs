//! # provbench-prov
//!
//! A PROV toolkit: the PROV data model ([`model`]), an ergonomic builder
//! ([`builder`]), the PROV-O mapping in both directions ([`to_rdf`],
//! [`from_rdf`]), PROV-O inference ([`inference`]) and a
//! PROV-CONSTRAINTS-subset validator ([`constraints`]).
//!
//! The paper's corpus expresses provenance "mostly using the PROV-O
//! ontology"; the two workflow-system exporters in `provbench-taverna`
//! and `provbench-wings` build [`model::Document`]s through this crate
//! and serialize them with profile-specific options
//! ([`to_rdf::ProfileOptions`]) that reproduce each system's PROV term
//! coverage exactly as reported in the paper's Tables 2 and 3.
//!
//! ## Example
//!
//! ```
//! use provbench_prov::builder::DocumentBuilder;
//! use provbench_rdf::DateTime;
//!
//! let mut b = DocumentBuilder::new("http://example.org/run1/");
//! let data = b.entity("data").label("input sequence").id();
//! let step = b
//!     .activity("step")
//!     .started(DateTime::from_unix_millis(0))
//!     .ended(DateTime::from_unix_millis(60_000))
//!     .id();
//! b.used(&step, &data, None);
//! let doc = b.build();
//! assert_eq!(doc.entities.len(), 1);
//! assert_eq!(doc.activities.len(), 1);
//! ```

pub mod builder;
pub mod constraints;
pub mod from_rdf;
pub mod inference;
pub mod model;
pub mod provjson;
pub mod provn;
pub mod stats;
pub mod to_rdf;

pub use builder::DocumentBuilder;
pub use constraints::{validate, Violation};
pub use inference::{apply_inference, InferenceRules};
pub use model::{Activity, Agent, AgentKind, Document, Entity, Relation};
pub use provjson::write_provjson;
pub use provn::write_provn;
pub use to_rdf::{document_to_graph, ProfileOptions};
