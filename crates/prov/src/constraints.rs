//! A PROV-CONSTRAINTS-subset validator over PROV-O graphs.
//!
//! The corpus deliberately includes traces of **failed** runs, which makes
//! consistency checking of the exported RDF non-trivial; this validator
//! implements the constraints that matter for workflow provenance:
//! activity interval sanity, generation-before-use ordering, uniqueness
//! of generation, and acyclicity/irreflexivity of derivation and
//! communication.

use provbench_rdf::{Graph, Iri, Subject, Term};
use provbench_vocab::prov;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A constraint violation found in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// `prov:endedAtTime` precedes `prov:startedAtTime`.
    ActivityEndsBeforeStart {
        /// The offending activity.
        activity: Iri,
    },
    /// An activity that used the entity ended before the activity that
    /// generated it started — usage cannot precede generation.
    UsageBeforeGeneration {
        /// The entity.
        entity: Iri,
        /// The generating activity.
        generator: Iri,
        /// The premature user.
        user: Iri,
    },
    /// The entity has more than one generating activity.
    MultipleGeneration {
        /// The entity.
        entity: Iri,
        /// All generating activities.
        generators: Vec<Iri>,
    },
    /// `prov:wasDerivedFrom` contains a cycle through this entity.
    DerivationCycle {
        /// An entity on the cycle.
        entity: Iri,
    },
    /// An activity `prov:wasInformedBy` itself.
    SelfCommunication {
        /// The activity.
        activity: Iri,
    },
    /// An entity `prov:wasDerivedFrom` itself.
    SelfDerivation {
        /// The entity.
        entity: Iri,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ActivityEndsBeforeStart { activity } => {
                write!(f, "activity {activity} ends before it starts")
            }
            Violation::UsageBeforeGeneration {
                entity,
                generator,
                user,
            } => write!(
                f,
                "entity {entity} is used by {user} before its generation by {generator}"
            ),
            Violation::MultipleGeneration { entity, generators } => write!(
                f,
                "entity {entity} has {} generating activities",
                generators.len()
            ),
            Violation::DerivationCycle { entity } => {
                write!(f, "derivation cycle through {entity}")
            }
            Violation::SelfCommunication { activity } => {
                write!(f, "activity {activity} informed by itself")
            }
            Violation::SelfDerivation { entity } => {
                write!(f, "entity {entity} derived from itself")
            }
        }
    }
}

fn activity_times(g: &Graph) -> BTreeMap<Iri, (Option<i64>, Option<i64>)> {
    let mut out: BTreeMap<Iri, (Option<i64>, Option<i64>)> = BTreeMap::new();
    for t in g.triples_matching(None, Some(&prov::started_at_time()), None) {
        if let (Subject::Iri(a), Term::Literal(l)) = (&t.subject, &t.object) {
            if let Some(dt) = l.as_date_time() {
                out.entry(a.clone()).or_default().0 = Some(dt.unix_millis());
            }
        }
    }
    for t in g.triples_matching(None, Some(&prov::ended_at_time()), None) {
        if let (Subject::Iri(a), Term::Literal(l)) = (&t.subject, &t.object) {
            if let Some(dt) = l.as_date_time() {
                out.entry(a.clone()).or_default().1 = Some(dt.unix_millis());
            }
        }
    }
    out
}

/// Validate a PROV-O graph; an empty vector means no violation detected.
pub fn validate(graph: &Graph) -> Vec<Violation> {
    let mut out = Vec::new();
    let times = activity_times(graph);

    // 1. start ≤ end per activity.
    for (activity, (start, end)) in &times {
        if let (Some(s), Some(e)) = (start, end) {
            if e < s {
                out.push(Violation::ActivityEndsBeforeStart {
                    activity: activity.clone(),
                });
            }
        }
    }

    // 2. Generation relations: uniqueness + temporal ordering vs usage.
    //
    // Workflow provenance routinely asserts that an output was generated
    // both by its producing process run and by the enclosing workflow
    // run (taverna-prov does exactly this); those two "generations" are
    // the same event seen at two granularities. We therefore tolerate
    // multiple generators when they are related by
    // `wfprov:wasPartOfWorkflowRun` (directly, either direction).
    let part_of = Iri::new_unchecked("http://purl.org/wf4ever/wfprov#wasPartOfWorkflowRun");
    let is_part = |a: &Iri, b: &Iri| {
        graph
            .triples_matching(
                Some(&Subject::Iri(a.clone())),
                Some(&part_of),
                Some(&Term::Iri(b.clone())),
            )
            .next()
            .is_some()
    };
    let mut generators: BTreeMap<Iri, Vec<Iri>> = BTreeMap::new();
    for t in graph.triples_matching(None, Some(&prov::was_generated_by()), None) {
        if let (Subject::Iri(e), Term::Iri(a)) = (&t.subject, &t.object) {
            generators.entry(e.clone()).or_default().push(a.clone());
        }
    }
    for (entity, gens) in &generators {
        let mut distinct = gens.clone();
        distinct.sort();
        distinct.dedup();
        let independent = distinct.iter().enumerate().any(|(i, a)| {
            distinct[i + 1..]
                .iter()
                .any(|b| !is_part(a, b) && !is_part(b, a))
        });
        if distinct.len() > 1 && independent {
            out.push(Violation::MultipleGeneration {
                entity: entity.clone(),
                generators: distinct,
            });
        }
    }
    for t in graph.triples_matching(None, Some(&prov::used()), None) {
        let (Subject::Iri(user), Term::Iri(entity)) = (&t.subject, &t.object) else {
            continue;
        };
        let Some(gens) = generators.get(entity) else {
            continue;
        };
        let Some((_, Some(user_end))) = times.get(user) else {
            continue;
        };
        for generator in gens {
            if let Some((Some(gen_start), _)) = times.get(generator) {
                if user_end < gen_start {
                    out.push(Violation::UsageBeforeGeneration {
                        entity: entity.clone(),
                        generator: generator.clone(),
                        user: user.clone(),
                    });
                }
            }
        }
    }

    // 3. Derivation: irreflexive + acyclic.
    let mut derivation: BTreeMap<Iri, Vec<Iri>> = BTreeMap::new();
    for t in graph.triples_matching(None, Some(&prov::was_derived_from()), None) {
        if let (Subject::Iri(d), Term::Iri(s)) = (&t.subject, &t.object) {
            if d == s {
                out.push(Violation::SelfDerivation { entity: d.clone() });
            } else {
                derivation.entry(d.clone()).or_default().push(s.clone());
            }
        }
    }
    for entity in cycle_roots(&derivation) {
        out.push(Violation::DerivationCycle { entity });
    }

    // 4. Communication: irreflexive.
    for t in graph.triples_matching(None, Some(&prov::was_informed_by()), None) {
        if let (Subject::Iri(a), Term::Iri(b)) = (&t.subject, &t.object) {
            if a == b {
                out.push(Violation::SelfCommunication {
                    activity: a.clone(),
                });
            }
        }
    }

    out
}

/// One representative node per cycle in the edge map (iterative DFS
/// three-colouring).
fn cycle_roots(edges: &BTreeMap<Iri, Vec<Iri>>) -> Vec<Iri> {
    #[derive(PartialEq, Clone, Copy)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: BTreeMap<&Iri, Color> = BTreeMap::new();
    let mut cycles: BTreeSet<Iri> = BTreeSet::new();
    for start in edges.keys() {
        if color.get(start).copied().unwrap_or(Color::White) != Color::White {
            continue;
        }
        // Stack of (node, next-child-index).
        let mut stack: Vec<(&Iri, usize)> = vec![(start, 0)];
        color.insert(start, Color::Grey);
        while let Some((node, idx)) = stack.pop() {
            let children = edges.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if idx < children.len() {
                stack.push((node, idx + 1));
                let child = &children[idx];
                match color.get(child).copied().unwrap_or(Color::White) {
                    Color::White => {
                        if edges.contains_key(child) {
                            color.insert(child, Color::Grey);
                            stack.push((child, 0));
                        } else {
                            color.insert(child, Color::Black);
                        }
                    }
                    Color::Grey => {
                        cycles.insert(child.clone());
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
            }
        }
    }
    cycles.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_rdf::{Literal, Triple};
    use provbench_vocab as vocab;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    fn time(ms: i64) -> Literal {
        Literal::date_time(&provbench_rdf::DateTime::from_unix_millis(ms))
    }

    #[test]
    fn clean_trace_validates() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://e/a"),
            prov::started_at_time(),
            time(0),
        ));
        g.insert(Triple::new(
            iri("http://e/a"),
            prov::ended_at_time(),
            time(100),
        ));
        g.insert(Triple::new(
            iri("http://e/out"),
            prov::was_generated_by(),
            iri("http://e/a"),
        ));
        g.insert(Triple::new(
            iri("http://e/a"),
            prov::used(),
            iri("http://e/in"),
        ));
        assert!(validate(&g).is_empty());
    }

    #[test]
    fn backwards_interval_detected() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://e/a"),
            prov::started_at_time(),
            time(100),
        ));
        g.insert(Triple::new(
            iri("http://e/a"),
            prov::ended_at_time(),
            time(0),
        ));
        assert_eq!(
            validate(&g),
            vec![Violation::ActivityEndsBeforeStart {
                activity: iri("http://e/a")
            }]
        );
    }

    #[test]
    fn usage_before_generation_detected() {
        let mut g = Graph::new();
        // user ran 0..100; generator ran 200..300 — impossible ordering.
        g.insert(Triple::new(
            iri("http://e/user"),
            prov::started_at_time(),
            time(0),
        ));
        g.insert(Triple::new(
            iri("http://e/user"),
            prov::ended_at_time(),
            time(100),
        ));
        g.insert(Triple::new(
            iri("http://e/gen"),
            prov::started_at_time(),
            time(200),
        ));
        g.insert(Triple::new(
            iri("http://e/gen"),
            prov::ended_at_time(),
            time(300),
        ));
        g.insert(Triple::new(
            iri("http://e/d"),
            prov::was_generated_by(),
            iri("http://e/gen"),
        ));
        g.insert(Triple::new(
            iri("http://e/user"),
            prov::used(),
            iri("http://e/d"),
        ));
        let vs = validate(&g);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::UsageBeforeGeneration { .. })));
    }

    #[test]
    fn multiple_generation_detected() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://e/d"),
            prov::was_generated_by(),
            iri("http://e/a1"),
        ));
        g.insert(Triple::new(
            iri("http://e/d"),
            prov::was_generated_by(),
            iri("http://e/a2"),
        ));
        let vs = validate(&g);
        assert!(
            matches!(&vs[..], [Violation::MultipleGeneration { generators, .. }] if generators.len() == 2)
        );
    }

    #[test]
    fn sub_activity_double_generation_is_tolerated() {
        let mut g = Graph::new();
        let part_of = Iri::new_unchecked("http://purl.org/wf4ever/wfprov#wasPartOfWorkflowRun");
        g.insert(Triple::new(
            iri("http://e/out"),
            prov::was_generated_by(),
            iri("http://e/proc"),
        ));
        g.insert(Triple::new(
            iri("http://e/out"),
            prov::was_generated_by(),
            iri("http://e/run"),
        ));
        g.insert(Triple::new(
            iri("http://e/proc"),
            part_of,
            iri("http://e/run"),
        ));
        assert!(validate(&g).is_empty());
    }

    #[test]
    fn duplicate_generation_by_same_activity_is_fine() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://e/d"),
            prov::was_generated_by(),
            iri("http://e/a1"),
        ));
        // An RDF graph is a set, so re-inserting is invisible anyway.
        g.insert(Triple::new(
            iri("http://e/d"),
            prov::was_generated_by(),
            iri("http://e/a1"),
        ));
        assert!(validate(&g).is_empty());
    }

    #[test]
    fn derivation_cycle_detected() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://e/a"),
            prov::was_derived_from(),
            iri("http://e/b"),
        ));
        g.insert(Triple::new(
            iri("http://e/b"),
            prov::was_derived_from(),
            iri("http://e/c"),
        ));
        g.insert(Triple::new(
            iri("http://e/c"),
            prov::was_derived_from(),
            iri("http://e/a"),
        ));
        let vs = validate(&g);
        assert!(vs
            .iter()
            .any(|v| matches!(v, Violation::DerivationCycle { .. })));
    }

    #[test]
    fn derivation_dag_is_fine() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://e/c"),
            prov::was_derived_from(),
            iri("http://e/a"),
        ));
        g.insert(Triple::new(
            iri("http://e/c"),
            prov::was_derived_from(),
            iri("http://e/b"),
        ));
        g.insert(Triple::new(
            iri("http://e/d"),
            prov::was_derived_from(),
            iri("http://e/c"),
        ));
        assert!(validate(&g).is_empty());
    }

    #[test]
    fn reflexive_relations_detected() {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://e/a"),
            prov::was_informed_by(),
            iri("http://e/a"),
        ));
        g.insert(Triple::new(
            iri("http://e/d"),
            prov::was_derived_from(),
            iri("http://e/d"),
        ));
        let vs = validate(&g);
        assert!(vs.contains(&Violation::SelfCommunication {
            activity: iri("http://e/a")
        }));
        assert!(vs.contains(&Violation::SelfDerivation {
            entity: iri("http://e/d")
        }));
    }

    #[test]
    fn violations_display() {
        let v = Violation::ActivityEndsBeforeStart {
            activity: iri("http://e/a"),
        };
        assert!(v.to_string().contains("ends before"));
        let _ = vocab::rdf_type(); // silence unused import in cfg(test)
    }
}
