//! The PROV data model: entities, activities, agents and the relations
//! between them, grouped into documents.
//!
//! The model is deliberately close to PROV-DM: a [`Document`] holds the
//! three node kinds keyed by identifier plus an ordered list of
//! [`Relation`]s. Extra RDF types (e.g. `wfprov:WorkflowRun`) and
//! arbitrary attribute triples ride along on each node so the two
//! workflow-system exporters can decorate traces without widening the
//! core model.

use provbench_rdf::{DateTime, Iri, Literal, Term};
use std::collections::BTreeMap;

/// One PROV entity (a data item, plan, or other thing with provenance).
#[derive(Clone, Debug, PartialEq)]
pub struct Entity {
    /// Identifier.
    pub id: Iri,
    /// Extra `rdf:type`s beyond `prov:Entity` (e.g. `wfprov:Artifact`).
    pub types: Vec<Iri>,
    /// Human-readable label (`rdfs:label`).
    pub label: Option<String>,
    /// Inline value (`prov:value`).
    pub value: Option<Literal>,
    /// `prov:atLocation`, when the system records one (Wings does).
    pub location: Option<Iri>,
    /// `prov:generatedAtTime`, when recorded.
    pub generated_at: Option<DateTime>,
    /// Arbitrary additional attribute triples `(predicate, object)`.
    pub attributes: Vec<(Iri, Term)>,
}

impl Entity {
    /// A bare entity with the given identifier.
    pub fn new(id: Iri) -> Self {
        Entity {
            id,
            types: Vec::new(),
            label: None,
            value: None,
            location: None,
            generated_at: None,
            attributes: Vec::new(),
        }
    }
}

/// One PROV activity (something that happened over time).
#[derive(Clone, Debug, PartialEq)]
pub struct Activity {
    /// Identifier.
    pub id: Iri,
    /// Extra `rdf:type`s beyond `prov:Activity` (e.g. `wfprov:ProcessRun`).
    pub types: Vec<Iri>,
    /// Human-readable label.
    pub label: Option<String>,
    /// `prov:startedAtTime` — recorded by Taverna, not by Wings.
    pub started: Option<DateTime>,
    /// `prov:endedAtTime` — recorded by Taverna, not by Wings.
    pub ended: Option<DateTime>,
    /// `prov:atLocation`, when recorded.
    pub location: Option<Iri>,
    /// Arbitrary additional attribute triples.
    pub attributes: Vec<(Iri, Term)>,
}

impl Activity {
    /// A bare activity with the given identifier.
    pub fn new(id: Iri) -> Self {
        Activity {
            id,
            types: Vec::new(),
            label: None,
            started: None,
            ended: None,
            location: None,
            attributes: Vec::new(),
        }
    }
}

/// The specific agent class, mapped to PROV-O subclasses of `prov:Agent`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgentKind {
    /// `prov:Person` — e.g. the scientist who launched the run.
    Person,
    /// `prov:SoftwareAgent` — e.g. the workflow engine.
    Software,
    /// `prov:Organization`.
    Organization,
    /// Just `prov:Agent`.
    Plain,
}

/// One PROV agent.
#[derive(Clone, Debug, PartialEq)]
pub struct Agent {
    /// Identifier.
    pub id: Iri,
    /// Which subclass of `prov:Agent` to assert.
    pub kind: AgentKind,
    /// Extra `rdf:type`s (e.g. `wfprov:WorkflowEngine`).
    pub types: Vec<Iri>,
    /// `foaf:name`, when known.
    pub name: Option<String>,
    /// Arbitrary additional attribute triples.
    pub attributes: Vec<(Iri, Term)>,
}

impl Agent {
    /// A bare agent of the given kind.
    pub fn new(id: Iri, kind: AgentKind) -> Self {
        Agent {
            id,
            kind,
            types: Vec::new(),
            name: None,
            attributes: Vec::new(),
        }
    }
}

/// A PROV relation between identified nodes.
///
/// Variants mirror PROV-DM relation names. Identifiers are kept as plain
/// [`Iri`]s; a document is well-formed when every referenced identifier is
/// declared in it (checked by [`Document::undeclared_references`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Relation {
    /// `activity prov:used entity`, optionally at a time.
    Used {
        /// The consuming activity.
        activity: Iri,
        /// The consumed entity.
        entity: Iri,
        /// Usage time, when recorded.
        time: Option<DateTime>,
    },
    /// `entity prov:wasGeneratedBy activity`, optionally at a time.
    WasGeneratedBy {
        /// The generated entity.
        entity: Iri,
        /// The generating activity.
        activity: Iri,
        /// Generation time, when recorded.
        time: Option<DateTime>,
    },
    /// `activity prov:wasAssociatedWith agent`, optionally with a plan.
    WasAssociatedWith {
        /// The activity.
        activity: Iri,
        /// The responsible agent.
        agent: Iri,
        /// The plan the agent followed (the workflow template).
        plan: Option<Iri>,
    },
    /// `entity prov:wasAttributedTo agent`.
    WasAttributedTo {
        /// The entity.
        entity: Iri,
        /// The agent it is ascribed to.
        agent: Iri,
    },
    /// `delegate prov:actedOnBehalfOf responsible`.
    ActedOnBehalfOf {
        /// The delegate agent.
        delegate: Iri,
        /// The responsible agent.
        responsible: Iri,
    },
    /// `generated prov:wasDerivedFrom used`.
    WasDerivedFrom {
        /// The derived entity.
        generated: Iri,
        /// The source entity.
        used: Iri,
    },
    /// `derived prov:hadPrimarySource source`.
    HadPrimarySource {
        /// The derived entity.
        derived: Iri,
        /// Its primary source.
        source: Iri,
    },
    /// `informed prov:wasInformedBy informant` (activity → activity).
    WasInformedBy {
        /// The downstream activity.
        informed: Iri,
        /// The upstream activity.
        informant: Iri,
    },
    /// `influencee prov:wasInfluencedBy influencer` (generic influence).
    WasInfluencedBy {
        /// The influenced node.
        influencee: Iri,
        /// The influencing node.
        influencer: Iri,
    },
    /// An arbitrary extension-vocabulary relation (wfprov, OPMW, …).
    Other {
        /// Subject identifier.
        subject: Iri,
        /// Predicate IRI.
        predicate: Iri,
        /// Object term.
        object: Term,
    },
}

impl Relation {
    /// The subject identifier of this relation.
    pub fn subject(&self) -> &Iri {
        match self {
            Relation::Used { activity, .. } => activity,
            Relation::WasGeneratedBy { entity, .. } => entity,
            Relation::WasAssociatedWith { activity, .. } => activity,
            Relation::WasAttributedTo { entity, .. } => entity,
            Relation::ActedOnBehalfOf { delegate, .. } => delegate,
            Relation::WasDerivedFrom { generated, .. } => generated,
            Relation::HadPrimarySource { derived, .. } => derived,
            Relation::WasInformedBy { informed, .. } => informed,
            Relation::WasInfluencedBy { influencee, .. } => influencee,
            Relation::Other { subject, .. } => subject,
        }
    }

    /// The object identifier, when the object is an identified node.
    pub fn object_id(&self) -> Option<&Iri> {
        match self {
            Relation::Used { entity, .. } => Some(entity),
            Relation::WasGeneratedBy { activity, .. } => Some(activity),
            Relation::WasAssociatedWith { agent, .. } => Some(agent),
            Relation::WasAttributedTo { agent, .. } => Some(agent),
            Relation::ActedOnBehalfOf { responsible, .. } => Some(responsible),
            Relation::WasDerivedFrom { used, .. } => Some(used),
            Relation::HadPrimarySource { source, .. } => Some(source),
            Relation::WasInformedBy { informant, .. } => Some(informant),
            Relation::WasInfluencedBy { influencer, .. } => Some(influencer),
            Relation::Other { object, .. } => object.as_iri(),
        }
    }
}

/// A PROV document: node tables plus relations, possibly with named
/// sub-bundles (Wings wraps each run account in a `prov:Bundle`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Document {
    /// Entities keyed by identifier.
    pub entities: BTreeMap<Iri, Entity>,
    /// Activities keyed by identifier.
    pub activities: BTreeMap<Iri, Activity>,
    /// Agents keyed by identifier.
    pub agents: BTreeMap<Iri, Agent>,
    /// Relations, in assertion order.
    pub relations: Vec<Relation>,
    /// Named bundles: `(bundle id, contents)`.
    pub bundles: Vec<(Iri, Document)>,
}

impl Document {
    /// An empty document.
    pub fn new() -> Self {
        Document::default()
    }

    /// Insert (or replace) an entity.
    pub fn add_entity(&mut self, entity: Entity) {
        self.entities.insert(entity.id.clone(), entity);
    }

    /// Insert (or replace) an activity.
    pub fn add_activity(&mut self, activity: Activity) {
        self.activities.insert(activity.id.clone(), activity);
    }

    /// Insert (or replace) an agent.
    pub fn add_agent(&mut self, agent: Agent) {
        self.agents.insert(agent.id.clone(), agent);
    }

    /// Append a relation.
    pub fn add_relation(&mut self, relation: Relation) {
        self.relations.push(relation);
    }

    /// Whether any node table or relation list is non-empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
            && self.activities.is_empty()
            && self.agents.is_empty()
            && self.relations.is_empty()
            && self.bundles.is_empty()
    }

    /// Total node count (entities + activities + agents), excluding bundles.
    pub fn node_count(&self) -> usize {
        self.entities.len() + self.activities.len() + self.agents.len()
    }

    /// Whether `id` names a declared node of any kind.
    pub fn declares(&self, id: &Iri) -> bool {
        self.entities.contains_key(id)
            || self.activities.contains_key(id)
            || self.agents.contains_key(id)
    }

    /// Identifiers referenced by relations but not declared as nodes.
    ///
    /// `Other` relations are exempt: extension vocabularies may point at
    /// external resources (templates, services) by design.
    pub fn undeclared_references(&self) -> Vec<Iri> {
        let mut out = Vec::new();
        for rel in &self.relations {
            if matches!(rel, Relation::Other { .. }) {
                continue;
            }
            for id in [Some(rel.subject()), rel.object_id()].into_iter().flatten() {
                if !self.declares(id) && !out.contains(id) {
                    out.push(id.clone());
                }
            }
            if let Relation::WasAssociatedWith { plan: Some(p), .. } = rel {
                if !self.declares(p) && !out.contains(p) {
                    out.push(p.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    #[test]
    fn empty_document() {
        let d = Document::new();
        assert!(d.is_empty());
        assert_eq!(d.node_count(), 0);
        assert!(d.undeclared_references().is_empty());
    }

    #[test]
    fn add_and_declare() {
        let mut d = Document::new();
        d.add_entity(Entity::new(iri("http://e/data")));
        d.add_activity(Activity::new(iri("http://e/act")));
        d.add_agent(Agent::new(iri("http://e/alice"), AgentKind::Person));
        assert_eq!(d.node_count(), 3);
        assert!(d.declares(&iri("http://e/data")));
        assert!(!d.declares(&iri("http://e/ghost")));
    }

    #[test]
    fn undeclared_references_found() {
        let mut d = Document::new();
        d.add_activity(Activity::new(iri("http://e/act")));
        d.add_relation(Relation::Used {
            activity: iri("http://e/act"),
            entity: iri("http://e/missing"),
            time: None,
        });
        assert_eq!(d.undeclared_references(), vec![iri("http://e/missing")]);
    }

    #[test]
    fn plan_reference_is_checked() {
        let mut d = Document::new();
        d.add_activity(Activity::new(iri("http://e/act")));
        d.add_agent(Agent::new(iri("http://e/engine"), AgentKind::Software));
        d.add_relation(Relation::WasAssociatedWith {
            activity: iri("http://e/act"),
            agent: iri("http://e/engine"),
            plan: Some(iri("http://e/template")),
        });
        assert_eq!(d.undeclared_references(), vec![iri("http://e/template")]);
    }

    #[test]
    fn other_relations_are_exempt_from_declaration() {
        let mut d = Document::new();
        d.add_relation(Relation::Other {
            subject: iri("http://e/x"),
            predicate: iri("http://e/p"),
            object: iri("http://e/external").into(),
        });
        assert!(d.undeclared_references().is_empty());
    }

    #[test]
    fn relation_accessors() {
        let r = Relation::WasGeneratedBy {
            entity: iri("http://e/out"),
            activity: iri("http://e/act"),
            time: None,
        };
        assert_eq!(r.subject(), &iri("http://e/out"));
        assert_eq!(r.object_id(), Some(&iri("http://e/act")));
    }

    #[test]
    fn replace_semantics() {
        let mut d = Document::new();
        let mut e = Entity::new(iri("http://e/data"));
        e.label = Some("v1".into());
        d.add_entity(e);
        let mut e2 = Entity::new(iri("http://e/data"));
        e2.label = Some("v2".into());
        d.add_entity(e2);
        assert_eq!(d.entities.len(), 1);
        assert_eq!(
            d.entities[&iri("http://e/data")].label.as_deref(),
            Some("v2")
        );
    }
}
