//! PROV-JSON serialization of [`Document`]s (the W3C member submission
//! format) — the third serialization of the PROV family this toolkit
//! speaks, alongside PROV-O/RDF and PROV-N.

use crate::model::{AgentKind, Document, Relation};
use crate::provn::Namer;
use provbench_rdf::Literal;
use std::fmt::Write;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn literal_json(l: &Literal, namer: &mut Namer) -> String {
    if let Some(lang) = l.language() {
        format!(
            "{{\"$\":\"{}\",\"lang\":\"{lang}\"}}",
            json_escape(l.lexical())
        )
    } else if l.is_simple() {
        format!("{{\"$\":\"{}\"}}", json_escape(l.lexical()))
    } else {
        format!(
            "{{\"$\":\"{}\",\"type\":\"{}\"}}",
            json_escape(l.lexical()),
            namer.qname(&l.datatype())
        )
    }
}

/// Render one `"name": { ...attrs }` record block.
fn record(pairs: &[(String, String)]) -> String {
    let inner: Vec<String> = pairs.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!("{{{}}}", inner.join(","))
}

fn section(name: &str, members: Vec<(String, String)>, out: &mut Vec<String>) {
    if members.is_empty() {
        return;
    }
    let inner: Vec<String> = members
        .iter()
        .map(|(id, body)| format!("\"{id}\":{body}"))
        .collect();
    out.push(format!("\"{name}\":{{{}}}", inner.join(",")));
}

fn body_sections(doc: &Document, namer: &mut Namer) -> Vec<String> {
    let mut sections = Vec::new();

    let entities: Vec<(String, String)> = doc
        .entities
        .values()
        .map(|e| {
            let mut attrs = Vec::new();
            for ty in &e.types {
                attrs.push((
                    "prov:type".to_owned(),
                    format!(
                        "{{\"$\":\"{}\",\"type\":\"prov:QUALIFIED_NAME\"}}",
                        namer.qname(ty)
                    ),
                ));
            }
            if let Some(label) = &e.label {
                attrs.push((
                    "prov:label".to_owned(),
                    format!("\"{}\"", json_escape(label)),
                ));
            }
            if let Some(value) = &e.value {
                attrs.push(("prov:value".to_owned(), literal_json(value, namer)));
            }
            if let Some(loc) = &e.location {
                attrs.push((
                    "prov:atLocation".to_owned(),
                    format!("\"{}\"", namer.qname(loc)),
                ));
            }
            (namer.qname(&e.id), record(&attrs))
        })
        .collect();
    section("entity", entities, &mut sections);

    let activities: Vec<(String, String)> = doc
        .activities
        .values()
        .map(|a| {
            let mut attrs = Vec::new();
            if let Some(t) = &a.started {
                attrs.push(("prov:startTime".to_owned(), format!("\"{t}\"")));
            }
            if let Some(t) = &a.ended {
                attrs.push(("prov:endTime".to_owned(), format!("\"{t}\"")));
            }
            for ty in &a.types {
                attrs.push((
                    "prov:type".to_owned(),
                    format!(
                        "{{\"$\":\"{}\",\"type\":\"prov:QUALIFIED_NAME\"}}",
                        namer.qname(ty)
                    ),
                ));
            }
            if let Some(label) = &a.label {
                attrs.push((
                    "prov:label".to_owned(),
                    format!("\"{}\"", json_escape(label)),
                ));
            }
            (namer.qname(&a.id), record(&attrs))
        })
        .collect();
    section("activity", activities, &mut sections);

    let agents: Vec<(String, String)> = doc
        .agents
        .values()
        .map(|a| {
            let mut attrs = Vec::new();
            let kind = match a.kind {
                AgentKind::Person => Some("prov:Person"),
                AgentKind::Software => Some("prov:SoftwareAgent"),
                AgentKind::Organization => Some("prov:Organization"),
                AgentKind::Plain => None,
            };
            if let Some(k) = kind {
                attrs.push((
                    "prov:type".to_owned(),
                    format!("{{\"$\":\"{k}\",\"type\":\"prov:QUALIFIED_NAME\"}}"),
                ));
            }
            if let Some(name) = &a.name {
                attrs.push(("foaf:name".to_owned(), format!("\"{}\"", json_escape(name))));
            }
            (namer.qname(&a.id), record(&attrs))
        })
        .collect();
    section("agent", agents, &mut sections);

    // Relations, grouped by PROV-JSON section name, with generated ids.
    let mut grouped: std::collections::BTreeMap<&str, Vec<(String, String)>> =
        std::collections::BTreeMap::new();
    for (i, r) in doc.relations.iter().enumerate() {
        let id = format!("_:r{i}");
        let (name, attrs): (&str, Vec<(String, String)>) = match r {
            Relation::Used {
                activity,
                entity,
                time,
            } => {
                let mut a = vec![
                    (
                        "prov:activity".to_owned(),
                        format!("\"{}\"", namer.qname(activity)),
                    ),
                    (
                        "prov:entity".to_owned(),
                        format!("\"{}\"", namer.qname(entity)),
                    ),
                ];
                if let Some(t) = time {
                    a.push(("prov:time".to_owned(), format!("\"{t}\"")));
                }
                ("used", a)
            }
            Relation::WasGeneratedBy {
                entity,
                activity,
                time,
            } => {
                let mut a = vec![
                    (
                        "prov:entity".to_owned(),
                        format!("\"{}\"", namer.qname(entity)),
                    ),
                    (
                        "prov:activity".to_owned(),
                        format!("\"{}\"", namer.qname(activity)),
                    ),
                ];
                if let Some(t) = time {
                    a.push(("prov:time".to_owned(), format!("\"{t}\"")));
                }
                ("wasGeneratedBy", a)
            }
            Relation::WasAssociatedWith {
                activity,
                agent,
                plan,
            } => {
                let mut a = vec![
                    (
                        "prov:activity".to_owned(),
                        format!("\"{}\"", namer.qname(activity)),
                    ),
                    (
                        "prov:agent".to_owned(),
                        format!("\"{}\"", namer.qname(agent)),
                    ),
                ];
                if let Some(p) = plan {
                    a.push(("prov:plan".to_owned(), format!("\"{}\"", namer.qname(p))));
                }
                ("wasAssociatedWith", a)
            }
            Relation::WasAttributedTo { entity, agent } => (
                "wasAttributedTo",
                vec![
                    (
                        "prov:entity".to_owned(),
                        format!("\"{}\"", namer.qname(entity)),
                    ),
                    (
                        "prov:agent".to_owned(),
                        format!("\"{}\"", namer.qname(agent)),
                    ),
                ],
            ),
            Relation::ActedOnBehalfOf {
                delegate,
                responsible,
            } => (
                "actedOnBehalfOf",
                vec![
                    (
                        "prov:delegate".to_owned(),
                        format!("\"{}\"", namer.qname(delegate)),
                    ),
                    (
                        "prov:responsible".to_owned(),
                        format!("\"{}\"", namer.qname(responsible)),
                    ),
                ],
            ),
            Relation::WasDerivedFrom { generated, used } => (
                "wasDerivedFrom",
                vec![
                    (
                        "prov:generatedEntity".to_owned(),
                        format!("\"{}\"", namer.qname(generated)),
                    ),
                    (
                        "prov:usedEntity".to_owned(),
                        format!("\"{}\"", namer.qname(used)),
                    ),
                ],
            ),
            Relation::HadPrimarySource { derived, source } => (
                "wasDerivedFrom",
                vec![
                    (
                        "prov:generatedEntity".to_owned(),
                        format!("\"{}\"", namer.qname(derived)),
                    ),
                    (
                        "prov:usedEntity".to_owned(),
                        format!("\"{}\"", namer.qname(source)),
                    ),
                    (
                        "prov:type".to_owned(),
                        "{\"$\":\"prov:PrimarySource\",\"type\":\"prov:QUALIFIED_NAME\"}"
                            .to_owned(),
                    ),
                ],
            ),
            Relation::WasInformedBy {
                informed,
                informant,
            } => (
                "wasInformedBy",
                vec![
                    (
                        "prov:informed".to_owned(),
                        format!("\"{}\"", namer.qname(informed)),
                    ),
                    (
                        "prov:informant".to_owned(),
                        format!("\"{}\"", namer.qname(informant)),
                    ),
                ],
            ),
            Relation::WasInfluencedBy {
                influencee,
                influencer,
            } => (
                "wasInfluencedBy",
                vec![
                    (
                        "prov:influencee".to_owned(),
                        format!("\"{}\"", namer.qname(influencee)),
                    ),
                    (
                        "prov:influencer".to_owned(),
                        format!("\"{}\"", namer.qname(influencer)),
                    ),
                ],
            ),
            Relation::Other { .. } => continue, // extension statements stay in RDF
        };
        grouped.entry(name).or_default().push((id, record(&attrs)));
    }
    for (name, members) in grouped {
        section(name, members, &mut sections);
    }
    sections
}

/// Serialize a document (including bundles) as PROV-JSON.
pub fn write_provjson(doc: &Document) -> String {
    let mut namer = Namer::new();
    let mut sections = body_sections(doc, &mut namer);

    if !doc.bundles.is_empty() {
        let bundles: Vec<(String, String)> = doc
            .bundles
            .iter()
            .map(|(id, contents)| {
                let inner = body_sections(contents, &mut namer).join(",");
                (namer.qname(id), format!("{{{inner}}}"))
            })
            .collect();
        section("bundle", bundles, &mut sections);
    }

    // Prefix table (collected while naming, so rendered last).
    let prefix_inner: Vec<String> = namer
        .prefix_table()
        .into_iter()
        .map(|(p, ns)| format!("\"{p}\":\"{ns}\""))
        .collect();
    let mut all = vec![format!("\"prefix\":{{{}}}", prefix_inner.join(","))];
    all.extend(sections);
    format!("{{{}}}", all.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DocumentBuilder;
    use provbench_rdf::DateTime;

    fn sample() -> Document {
        let mut b = DocumentBuilder::new("http://example.org/run/");
        let data = b.entity("data").label("in").value(Literal::integer(7)).id();
        let out = b.entity("out").id();
        let act = b
            .activity("step")
            .started(DateTime::from_unix_millis(0))
            .ended(DateTime::from_unix_millis(1_000))
            .id();
        let who = b.agent("alice", AgentKind::Person).name("alice").id();
        b.used(&act, &data, None);
        b.generated(&out, &act, None);
        b.associated(&act, &who, None);
        b.primary_source(&out, &data);
        b.build()
    }

    fn balanced(json: &str) -> bool {
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for c in json.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0 && !in_str
    }

    #[test]
    fn renders_all_sections() {
        let json = write_provjson(&sample());
        assert!(balanced(&json), "unbalanced: {json}");
        for key in [
            "\"prefix\":",
            "\"entity\":",
            "\"activity\":",
            "\"agent\":",
            "\"used\":",
            "\"wasGeneratedBy\":",
            "\"wasAssociatedWith\":",
            "\"wasDerivedFrom\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"prov:startTime\":\"1970-01-01T00:00:00Z\""));
        assert!(json.contains("prov:PrimarySource"));
        assert!(json.contains("\"foaf:name\":\"alice\""));
    }

    #[test]
    fn bundles_nest_as_sections() {
        let mut outer = DocumentBuilder::new("http://example.org/");
        let id = outer.mint("account1");
        outer.bundle(id, sample());
        let json = write_provjson(&outer.build());
        assert!(balanced(&json));
        assert!(json.contains("\"bundle\":"));
        assert!(json.contains("account1"));
    }

    #[test]
    fn is_deterministic_and_escapes() {
        assert_eq!(write_provjson(&sample()), write_provjson(&sample()));
        let mut b = DocumentBuilder::new("http://example.org/");
        b.entity("e").label("a\"b\nc");
        let json = write_provjson(&b.build());
        assert!(json.contains("a\\\"b\\nc"));
        assert!(balanced(&json));
    }

    #[test]
    fn empty_document() {
        let json = write_provjson(&Document::new());
        assert!(balanced(&json));
        assert!(json.starts_with("{\"prefix\":{"));
    }
}
