//! Fluent construction of PROV [`Document`]s.

use crate::model::{Activity, Agent, AgentKind, Document, Entity, Relation};
use provbench_rdf::{DateTime, Iri, Literal, Term};

/// Builds a [`Document`], minting identifiers under a base IRI.
#[derive(Clone, Debug)]
pub struct DocumentBuilder {
    base: String,
    doc: Document,
}

impl DocumentBuilder {
    /// A builder minting identifiers under `base` (e.g.
    /// `http://example.org/taverna/run/17/`).
    pub fn new(base: impl Into<String>) -> Self {
        DocumentBuilder {
            base: base.into(),
            doc: Document::new(),
        }
    }

    /// Mint an identifier `base + local`.
    pub fn mint(&self, local: &str) -> Iri {
        Iri::new_unchecked(format!("{}{}", self.base, local))
    }

    /// Declare an entity with a minted id; returns a node builder.
    pub fn entity(&mut self, local: &str) -> EntityBuilder<'_> {
        let id = self.mint(local);
        self.entity_iri(id)
    }

    /// Declare an entity with an explicit id.
    pub fn entity_iri(&mut self, id: Iri) -> EntityBuilder<'_> {
        self.doc
            .entities
            .entry(id.clone())
            .or_insert_with(|| Entity::new(id.clone()));
        EntityBuilder {
            doc: &mut self.doc,
            id,
        }
    }

    /// Declare an activity with a minted id.
    pub fn activity(&mut self, local: &str) -> ActivityBuilder<'_> {
        let id = self.mint(local);
        self.activity_iri(id)
    }

    /// Declare an activity with an explicit id.
    pub fn activity_iri(&mut self, id: Iri) -> ActivityBuilder<'_> {
        self.doc
            .activities
            .entry(id.clone())
            .or_insert_with(|| Activity::new(id.clone()));
        ActivityBuilder {
            doc: &mut self.doc,
            id,
        }
    }

    /// Declare an agent with a minted id.
    pub fn agent(&mut self, local: &str, kind: AgentKind) -> AgentBuilder<'_> {
        let id = self.mint(local);
        self.agent_iri(id, kind)
    }

    /// Declare an agent with an explicit id.
    pub fn agent_iri(&mut self, id: Iri, kind: AgentKind) -> AgentBuilder<'_> {
        self.doc
            .agents
            .entry(id.clone())
            .or_insert_with(|| Agent::new(id.clone(), kind));
        AgentBuilder {
            doc: &mut self.doc,
            id,
        }
    }

    /// `activity prov:used entity`.
    pub fn used(&mut self, activity: &Iri, entity: &Iri, time: Option<DateTime>) {
        self.doc.add_relation(Relation::Used {
            activity: activity.clone(),
            entity: entity.clone(),
            time,
        });
    }

    /// `entity prov:wasGeneratedBy activity`.
    pub fn generated(&mut self, entity: &Iri, activity: &Iri, time: Option<DateTime>) {
        self.doc.add_relation(Relation::WasGeneratedBy {
            entity: entity.clone(),
            activity: activity.clone(),
            time,
        });
    }

    /// `activity prov:wasAssociatedWith agent` (with optional plan).
    pub fn associated(&mut self, activity: &Iri, agent: &Iri, plan: Option<&Iri>) {
        self.doc.add_relation(Relation::WasAssociatedWith {
            activity: activity.clone(),
            agent: agent.clone(),
            plan: plan.cloned(),
        });
    }

    /// `entity prov:wasAttributedTo agent`.
    pub fn attributed(&mut self, entity: &Iri, agent: &Iri) {
        self.doc.add_relation(Relation::WasAttributedTo {
            entity: entity.clone(),
            agent: agent.clone(),
        });
    }

    /// `delegate prov:actedOnBehalfOf responsible`.
    pub fn delegated(&mut self, delegate: &Iri, responsible: &Iri) {
        self.doc.add_relation(Relation::ActedOnBehalfOf {
            delegate: delegate.clone(),
            responsible: responsible.clone(),
        });
    }

    /// `generated prov:wasDerivedFrom used`.
    pub fn derived(&mut self, generated: &Iri, used: &Iri) {
        self.doc.add_relation(Relation::WasDerivedFrom {
            generated: generated.clone(),
            used: used.clone(),
        });
    }

    /// `derived prov:hadPrimarySource source`.
    pub fn primary_source(&mut self, derived: &Iri, source: &Iri) {
        self.doc.add_relation(Relation::HadPrimarySource {
            derived: derived.clone(),
            source: source.clone(),
        });
    }

    /// `informed prov:wasInformedBy informant`.
    pub fn informed(&mut self, informed: &Iri, informant: &Iri) {
        self.doc.add_relation(Relation::WasInformedBy {
            informed: informed.clone(),
            informant: informant.clone(),
        });
    }

    /// `influencee prov:wasInfluencedBy influencer`.
    pub fn influenced(&mut self, influencee: &Iri, influencer: &Iri) {
        self.doc.add_relation(Relation::WasInfluencedBy {
            influencee: influencee.clone(),
            influencer: influencer.clone(),
        });
    }

    /// An extension-vocabulary relation.
    pub fn other(&mut self, subject: &Iri, predicate: Iri, object: impl Into<Term>) {
        self.doc.add_relation(Relation::Other {
            subject: subject.clone(),
            predicate,
            object: object.into(),
        });
    }

    /// Append an already-constructed relation.
    pub fn relation(&mut self, relation: Relation) {
        self.doc.add_relation(relation);
    }

    /// Attach a named bundle.
    pub fn bundle(&mut self, id: Iri, contents: Document) {
        self.doc.bundles.push((id, contents));
    }

    /// Finish and return the document.
    pub fn build(self) -> Document {
        self.doc
    }

    /// Peek at the document under construction.
    pub fn document(&self) -> &Document {
        &self.doc
    }
}

/// Node builder for entities.
pub struct EntityBuilder<'a> {
    doc: &'a mut Document,
    id: Iri,
}

impl EntityBuilder<'_> {
    fn node(&mut self) -> &mut Entity {
        self.doc
            .entities
            .get_mut(&self.id)
            .expect("entity inserted at builder creation")
    }

    /// Add an extra `rdf:type`.
    pub fn typed(mut self, ty: Iri) -> Self {
        let node = self.node();
        if !node.types.contains(&ty) {
            node.types.push(ty);
        }
        self
    }

    /// Set the `rdfs:label`.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.node().label = Some(label.into());
        self
    }

    /// Set the inline `prov:value`.
    pub fn value(mut self, value: Literal) -> Self {
        self.node().value = Some(value);
        self
    }

    /// Set `prov:atLocation`.
    pub fn location(mut self, location: Iri) -> Self {
        self.node().location = Some(location);
        self
    }

    /// Set `prov:generatedAtTime`.
    pub fn generated_at(mut self, at: DateTime) -> Self {
        self.node().generated_at = Some(at);
        self
    }

    /// Attach an arbitrary attribute.
    pub fn attribute(mut self, predicate: Iri, object: impl Into<Term>) -> Self {
        self.node().attributes.push((predicate, object.into()));
        self
    }

    /// The entity's identifier.
    pub fn id(self) -> Iri {
        self.id
    }
}

/// Node builder for activities.
pub struct ActivityBuilder<'a> {
    doc: &'a mut Document,
    id: Iri,
}

impl ActivityBuilder<'_> {
    fn node(&mut self) -> &mut Activity {
        self.doc
            .activities
            .get_mut(&self.id)
            .expect("activity inserted at builder creation")
    }

    /// Add an extra `rdf:type`.
    pub fn typed(mut self, ty: Iri) -> Self {
        let node = self.node();
        if !node.types.contains(&ty) {
            node.types.push(ty);
        }
        self
    }

    /// Set the `rdfs:label`.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.node().label = Some(label.into());
        self
    }

    /// Set `prov:startedAtTime`.
    pub fn started(mut self, at: DateTime) -> Self {
        self.node().started = Some(at);
        self
    }

    /// Set `prov:endedAtTime`.
    pub fn ended(mut self, at: DateTime) -> Self {
        self.node().ended = Some(at);
        self
    }

    /// Set `prov:atLocation`.
    pub fn location(mut self, location: Iri) -> Self {
        self.node().location = Some(location);
        self
    }

    /// Attach an arbitrary attribute.
    pub fn attribute(mut self, predicate: Iri, object: impl Into<Term>) -> Self {
        self.node().attributes.push((predicate, object.into()));
        self
    }

    /// The activity's identifier.
    pub fn id(self) -> Iri {
        self.id
    }
}

/// Node builder for agents.
pub struct AgentBuilder<'a> {
    doc: &'a mut Document,
    id: Iri,
}

impl AgentBuilder<'_> {
    fn node(&mut self) -> &mut Agent {
        self.doc
            .agents
            .get_mut(&self.id)
            .expect("agent inserted at builder creation")
    }

    /// Add an extra `rdf:type`.
    pub fn typed(mut self, ty: Iri) -> Self {
        let node = self.node();
        if !node.types.contains(&ty) {
            node.types.push(ty);
        }
        self
    }

    /// Set the `foaf:name`.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.node().name = Some(name.into());
        self
    }

    /// Attach an arbitrary attribute.
    pub fn attribute(mut self, predicate: Iri, object: impl Into<Term>) -> Self {
        self.node().attributes.push((predicate, object.into()));
        self
    }

    /// The agent's identifier.
    pub fn id(self) -> Iri {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_vocab as vocab;

    #[test]
    fn builds_a_complete_run_document() {
        let mut b = DocumentBuilder::new("http://example.org/run/1/");
        let input = b.entity("input").label("raw reads").id();
        let output = b
            .entity("output")
            .typed(vocab::wfprov::artifact())
            .value(Literal::simple("42"))
            .id();
        let act = b
            .activity("align")
            .started(DateTime::from_unix_millis(0))
            .ended(DateTime::from_unix_millis(5_000))
            .id();
        let engine = b.agent("engine", AgentKind::Software).name("taverna").id();
        b.used(&act, &input, None);
        b.generated(&output, &act, Some(DateTime::from_unix_millis(5_000)));
        b.associated(&act, &engine, None);
        let doc = b.build();
        assert_eq!(doc.entities.len(), 2);
        assert_eq!(doc.activities.len(), 1);
        assert_eq!(doc.agents.len(), 1);
        assert_eq!(doc.relations.len(), 3);
        assert!(doc.undeclared_references().is_empty());
    }

    #[test]
    fn minting_respects_base() {
        let b = DocumentBuilder::new("urn:run:");
        assert_eq!(b.mint("x").as_str(), "urn:run:x");
    }

    #[test]
    fn redeclaration_preserves_existing_node() {
        let mut b = DocumentBuilder::new("http://e/");
        b.entity("d").label("first");
        let id = b.entity("d").id(); // re-entry must not wipe the label
        let doc = b.build();
        assert_eq!(doc.entities[&id].label.as_deref(), Some("first"));
    }

    #[test]
    fn typed_deduplicates() {
        let mut b = DocumentBuilder::new("http://e/");
        let id = b
            .entity("d")
            .typed(vocab::wfprov::artifact())
            .typed(vocab::wfprov::artifact())
            .id();
        assert_eq!(b.document().entities[&id].types.len(), 1);
    }

    #[test]
    fn bundles_attach() {
        let mut inner = DocumentBuilder::new("http://e/inner/");
        inner.entity("x");
        let mut outer = DocumentBuilder::new("http://e/");
        let bundle_id = outer.mint("bundle1");
        outer.bundle(bundle_id.clone(), inner.build());
        let doc = outer.build();
        assert_eq!(doc.bundles.len(), 1);
        assert_eq!(doc.bundles[0].0, bundle_id);
        assert_eq!(doc.bundles[0].1.entities.len(), 1);
    }
}
