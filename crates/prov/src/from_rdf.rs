//! Recovering a PROV [`Document`] from a PROV-O graph.
//!
//! This is the inverse of [`crate::to_rdf`] up to the qualified-pattern
//! sugar: qualified associations/usages/generations are folded back into
//! the corresponding direct relations (plans and times re-attached), and
//! the helper blank nodes disappear. Triples that fit no PROV idiom are
//! preserved as node attributes (when their subject is a declared node)
//! or as [`Relation::Other`].

use crate::model::{Activity, Agent, AgentKind, Document, Entity, Relation};
use provbench_rdf::{Graph, Iri, Subject, Term};
use provbench_vocab::{self as vocab, foaf, prov, rdfs};
use std::collections::{BTreeMap, BTreeSet};

/// Recover a document from a PROV-O graph.
pub fn graph_to_document(graph: &Graph) -> Document {
    let rdf_type = vocab::rdf_type();
    // 1. Type table for named subjects.
    let mut types: BTreeMap<Iri, Vec<Iri>> = BTreeMap::new();
    for t in graph.triples_matching(None, Some(&rdf_type), None) {
        if let (Subject::Iri(s), Term::Iri(o)) = (&t.subject, &t.object) {
            types.entry(s.clone()).or_default().push(o.clone());
        }
    }

    let is = |ts: &[Iri], class: &Iri| ts.iter().any(|t| t == class);

    let mut doc = Document::new();
    // 2. Classify nodes. Agent beats Activity beats Entity when a node is
    //    (unusually) multi-typed across categories.
    for (id, ts) in &types {
        if is(ts, &prov::agent())
            || is(ts, &prov::person())
            || is(ts, &prov::software_agent())
            || is(ts, &prov::organization())
        {
            let kind = if is(ts, &prov::person()) {
                AgentKind::Person
            } else if is(ts, &prov::software_agent()) {
                AgentKind::Software
            } else if is(ts, &prov::organization()) {
                AgentKind::Organization
            } else {
                AgentKind::Plain
            };
            let mut agent = Agent::new(id.clone(), kind);
            agent.types = ts
                .iter()
                .filter(|t| {
                    **t != prov::agent()
                        && **t != prov::person()
                        && **t != prov::software_agent()
                        && **t != prov::organization()
                })
                .cloned()
                .collect();
            doc.add_agent(agent);
        } else if is(ts, &prov::activity()) {
            let mut act = Activity::new(id.clone());
            act.types = ts
                .iter()
                .filter(|t| **t != prov::activity())
                .cloned()
                .collect();
            doc.add_activity(act);
        } else if is(ts, &prov::entity()) || is(ts, &prov::plan()) || is(ts, &prov::bundle()) {
            let mut ent = Entity::new(id.clone());
            ent.types = ts
                .iter()
                .filter(|t| **t != prov::entity())
                .cloned()
                .collect();
            doc.add_entity(ent);
        }
    }

    // 3. Blank helper nodes of qualified patterns, to be skipped later.
    let mut helper_blanks: BTreeSet<Subject> = BTreeSet::new();
    for p in [
        prov::qualified_association(),
        prov::qualified_usage(),
        prov::qualified_generation(),
    ] {
        for t in graph.triples_matching(None, Some(&p), None) {
            if let Term::Blank(b) = &t.object {
                helper_blanks.insert(Subject::Blank(b.clone()));
            }
        }
    }

    // 4. Qualified associations → (activity, agent) → plan.
    let mut assoc_plans: BTreeMap<(Iri, Iri), Iri> = BTreeMap::new();
    for t in graph.triples_matching(None, Some(&prov::qualified_association()), None) {
        let Subject::Iri(activity) = &t.subject else {
            continue;
        };
        let Some(q) = t.object.as_subject() else {
            continue;
        };
        let agent = graph
            .object(&q, &prov::agent_prop())
            .and_then(|o| o.as_iri().cloned());
        let plan = graph
            .object(&q, &prov::had_plan())
            .and_then(|o| o.as_iri().cloned());
        if let (Some(agent), Some(plan)) = (agent, plan) {
            assoc_plans.insert((activity.clone(), agent), plan);
        }
    }

    // 5. Direct relations.
    let rel_preds = [
        prov::used(),
        prov::was_generated_by(),
        prov::was_associated_with(),
        prov::was_attributed_to(),
        prov::acted_on_behalf_of(),
        prov::was_derived_from(),
        prov::had_primary_source(),
        prov::was_informed_by(),
        prov::was_influenced_by(),
    ];
    for t in graph.iter() {
        let Subject::Iri(s) = &t.subject else {
            continue;
        };
        let Some(o) = t.object.as_iri() else { continue };
        let p = &t.predicate;
        let rel = if *p == prov::used() {
            Some(Relation::Used {
                activity: s.clone(),
                entity: o.clone(),
                time: None,
            })
        } else if *p == prov::was_generated_by() {
            Some(Relation::WasGeneratedBy {
                entity: s.clone(),
                activity: o.clone(),
                time: None,
            })
        } else if *p == prov::was_associated_with() {
            Some(Relation::WasAssociatedWith {
                activity: s.clone(),
                agent: o.clone(),
                plan: assoc_plans.get(&(s.clone(), o.clone())).cloned(),
            })
        } else if *p == prov::was_attributed_to() {
            Some(Relation::WasAttributedTo {
                entity: s.clone(),
                agent: o.clone(),
            })
        } else if *p == prov::acted_on_behalf_of() {
            Some(Relation::ActedOnBehalfOf {
                delegate: s.clone(),
                responsible: o.clone(),
            })
        } else if *p == prov::was_derived_from() {
            Some(Relation::WasDerivedFrom {
                generated: s.clone(),
                used: o.clone(),
            })
        } else if *p == prov::had_primary_source() {
            Some(Relation::HadPrimarySource {
                derived: s.clone(),
                source: o.clone(),
            })
        } else if *p == prov::was_informed_by() {
            Some(Relation::WasInformedBy {
                informed: s.clone(),
                informant: o.clone(),
            })
        } else if *p == prov::was_influenced_by() {
            Some(Relation::WasInfluencedBy {
                influencee: s.clone(),
                influencer: o.clone(),
            })
        } else {
            None
        };
        if let Some(rel) = rel {
            doc.add_relation(rel);
        }
    }

    // 6. Node detail + leftover attributes.
    let known_node_preds = [
        rdfs::label(),
        prov::value(),
        prov::at_location(),
        prov::generated_at_time(),
        prov::started_at_time(),
        prov::ended_at_time(),
        foaf::name(),
        prov::qualified_association(),
        prov::qualified_usage(),
        prov::qualified_generation(),
    ];
    for t in graph.iter() {
        if helper_blanks.contains(&t.subject) {
            continue; // qualified-pattern internals
        }
        let Subject::Iri(s) = &t.subject else {
            continue;
        };
        let p = &t.predicate;
        if *p == rdf_type || rel_preds.contains(p) {
            continue;
        }
        if *p == rdfs::label() {
            if let Some(l) = t.object.as_literal() {
                if let Some(e) = doc.entities.get_mut(s) {
                    e.label = Some(l.lexical().to_owned());
                } else if let Some(a) = doc.activities.get_mut(s) {
                    a.label = Some(l.lexical().to_owned());
                }
            }
            continue;
        }
        if *p == prov::value() {
            if let (Some(l), Some(e)) = (t.object.as_literal(), doc.entities.get_mut(s)) {
                e.value = Some(l.clone());
            }
            continue;
        }
        if *p == prov::at_location() {
            if let Some(loc) = t.object.as_iri() {
                if let Some(e) = doc.entities.get_mut(s) {
                    e.location = Some(loc.clone());
                } else if let Some(a) = doc.activities.get_mut(s) {
                    a.location = Some(loc.clone());
                }
            }
            continue;
        }
        if *p == prov::generated_at_time() {
            if let (Some(l), Some(e)) = (t.object.as_literal(), doc.entities.get_mut(s)) {
                e.generated_at = l.as_date_time();
            }
            continue;
        }
        if *p == prov::started_at_time() {
            if let (Some(l), Some(a)) = (t.object.as_literal(), doc.activities.get_mut(s)) {
                a.started = l.as_date_time();
            }
            continue;
        }
        if *p == prov::ended_at_time() {
            if let (Some(l), Some(a)) = (t.object.as_literal(), doc.activities.get_mut(s)) {
                a.ended = l.as_date_time();
            }
            continue;
        }
        if *p == foaf::name() {
            if let (Some(l), Some(a)) = (t.object.as_literal(), doc.agents.get_mut(s)) {
                a.name = Some(l.lexical().to_owned());
            }
            continue;
        }
        if known_node_preds.contains(p) {
            continue;
        }
        // Unknown predicate: attribute on a declared node, else Other.
        if let Some(e) = doc.entities.get_mut(s) {
            e.attributes.push((p.clone(), t.object.clone()));
        } else if let Some(a) = doc.activities.get_mut(s) {
            a.attributes.push((p.clone(), t.object.clone()));
        } else if let Some(a) = doc.agents.get_mut(s) {
            a.attributes.push((p.clone(), t.object.clone()));
        } else {
            doc.add_relation(Relation::Other {
                subject: s.clone(),
                predicate: p.clone(),
                object: t.object.clone(),
            });
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DocumentBuilder;
    use crate::to_rdf::{document_to_graph, ProfileOptions};
    use provbench_rdf::DateTime;

    fn sample() -> Document {
        let mut b = DocumentBuilder::new("http://e/run/");
        let data = b.entity("data").label("in").id();
        let out = b.entity("out").id();
        let template = b.entity("template").id();
        let act = b
            .activity("step")
            .label("alignment")
            .started(DateTime::from_unix_millis(0))
            .ended(DateTime::from_unix_millis(1000))
            .id();
        let engine = b.agent("engine", AgentKind::Software).name("sim").id();
        b.used(&act, &data, None);
        b.generated(&out, &act, None);
        b.associated(&act, &engine, Some(&template));
        b.derived(&out, &data);
        b.build()
    }

    #[test]
    fn roundtrip_recovers_structure_taverna_profile() {
        let doc = sample();
        let g = document_to_graph(&doc, ProfileOptions::taverna());
        let back = graph_to_document(&g);
        assert_eq!(back.entities.len(), 3);
        assert_eq!(back.activities.len(), 1);
        assert_eq!(back.agents.len(), 1);
        // used, wasGeneratedBy, wasAssociatedWith, wasDerivedFrom.
        assert_eq!(back.relations.len(), 4);
        let id = |s: &str| Iri::new(format!("http://e/run/{s}")).unwrap();
        let act = &back.activities[&id("step")];
        assert_eq!(act.label.as_deref(), Some("alignment"));
        assert_eq!(act.started, Some(DateTime::from_unix_millis(0)));
        assert_eq!(act.ended, Some(DateTime::from_unix_millis(1000)));
        let agent = &back.agents[&id("engine")];
        assert_eq!(agent.kind, AgentKind::Software);
        assert_eq!(agent.name.as_deref(), Some("sim"));
        // Plan recovered from the qualified association.
        assert!(back.relations.iter().any(|r| matches!(
            r,
            Relation::WasAssociatedWith { plan: Some(p), .. } if *p == id("template")
        )));
    }

    #[test]
    fn roundtrip_recovers_plan_typing_wings_profile() {
        let doc = sample();
        let g = document_to_graph(&doc, ProfileOptions::wings());
        let back = graph_to_document(&g);
        // Under the Wings profile the plan is an entity typed prov:Plan;
        // the association has no qualified pattern, so no plan linkage.
        let template = Iri::new("http://e/run/template").unwrap();
        assert!(back.entities[&template].types.contains(&prov::plan()));
    }

    #[test]
    fn unknown_predicates_become_attributes() {
        let mut b = DocumentBuilder::new("http://e/");
        let d = b.entity("d").id();
        b.other(
            &d,
            Iri::new("http://custom/pred").unwrap(),
            Iri::new("http://custom/obj").unwrap(),
        );
        let g = document_to_graph(&b.build(), ProfileOptions::taverna());
        let back = graph_to_document(&g);
        assert_eq!(back.entities[&d].attributes.len(), 1);
    }

    #[test]
    fn empty_graph_is_empty_document() {
        assert!(graph_to_document(&Graph::new()).is_empty());
    }
}
