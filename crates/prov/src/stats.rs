//! Term-usage statistics over PROV-O graphs — the raw material for the
//! paper's Tables 2 and 3 (computed in `provbench-analysis`).

use provbench_rdf::{Graph, Iri, Term};
use provbench_vocab as vocab;
use std::collections::BTreeMap;

/// Counts of predicate uses and class instantiations in one or more graphs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TermStats {
    /// Predicate IRI → number of triples asserting it.
    pub predicate_counts: BTreeMap<Iri, usize>,
    /// Class IRI → number of `rdf:type` triples targeting it.
    pub class_counts: BTreeMap<Iri, usize>,
    /// Total triples scanned.
    pub triple_count: usize,
}

impl TermStats {
    /// Statistics of a single graph.
    pub fn of_graph(graph: &Graph) -> Self {
        let mut stats = TermStats::default();
        stats.add_graph(graph);
        stats
    }

    /// Accumulate a graph into these statistics.
    pub fn add_graph(&mut self, graph: &Graph) {
        let rdf_type = vocab::rdf_type();
        for t in graph.iter() {
            self.triple_count += 1;
            if t.predicate == rdf_type {
                if let Term::Iri(class) = &t.object {
                    *self.class_counts.entry(class.clone()).or_default() += 1;
                }
            }
            *self
                .predicate_counts
                .entry(t.predicate.clone())
                .or_default() += 1;
        }
    }

    /// Merge another statistics object into this one.
    pub fn merge(&mut self, other: &TermStats) {
        for (k, v) in &other.predicate_counts {
            *self.predicate_counts.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.class_counts {
            *self.class_counts.entry(k.clone()).or_default() += v;
        }
        self.triple_count += other.triple_count;
    }

    /// Whether any triple asserts this predicate.
    pub fn uses_property(&self, property: &Iri) -> bool {
        self.predicate_counts.get(property).copied().unwrap_or(0) > 0
    }

    /// Whether any subject is typed with this class.
    pub fn uses_class(&self, class: &Iri) -> bool {
        self.class_counts.get(class).copied().unwrap_or(0) > 0
    }

    /// Whether the term (class or property, per `kind`) is used.
    pub fn uses_term(&self, info: &vocab::ProvTermInfo) -> bool {
        match info.kind {
            vocab::TermKind::Class => self.uses_class(&info.to_iri()),
            vocab::TermKind::Property => self.uses_property(&info.to_iri()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_rdf::Triple;
    use provbench_vocab::prov;

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(Triple::new(
            iri("http://e/a"),
            vocab::rdf_type(),
            prov::activity(),
        ));
        g.insert(Triple::new(
            iri("http://e/a"),
            prov::used(),
            iri("http://e/d"),
        ));
        g.insert(Triple::new(
            iri("http://e/a"),
            prov::used(),
            iri("http://e/d2"),
        ));
        g
    }

    #[test]
    fn counts_predicates_and_classes() {
        let s = TermStats::of_graph(&sample());
        assert_eq!(s.triple_count, 3);
        assert_eq!(s.predicate_counts[&prov::used()], 2);
        assert_eq!(s.class_counts[&prov::activity()], 1);
        assert!(s.uses_property(&prov::used()));
        assert!(s.uses_class(&prov::activity()));
        assert!(!s.uses_property(&prov::was_generated_by()));
        assert!(!s.uses_class(&prov::entity()));
    }

    #[test]
    fn uses_term_dispatches_on_kind() {
        let s = TermStats::of_graph(&sample());
        let activity_info = vocab::prov::STARTING_POINT_TERMS
            .iter()
            .find(|t| t.name == "prov:Activity")
            .unwrap();
        let used_info = vocab::prov::STARTING_POINT_TERMS
            .iter()
            .find(|t| t.name == "prov:used")
            .unwrap();
        let derived_info = vocab::prov::STARTING_POINT_TERMS
            .iter()
            .find(|t| t.name == "prov:wasDerivedFrom")
            .unwrap();
        assert!(s.uses_term(activity_info));
        assert!(s.uses_term(used_info));
        assert!(!s.uses_term(derived_info));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TermStats::of_graph(&sample());
        let b = TermStats::of_graph(&sample());
        a.merge(&b);
        assert_eq!(a.triple_count, 6);
        assert_eq!(a.predicate_counts[&prov::used()], 4);
        assert_eq!(a.class_counts[&prov::activity()], 2);
    }
}
