//! PROV-O inference over RDF graphs.
//!
//! The paper's Table 3 marks some terms with a star: "the PROV statement
//! is not directly asserted in the traces, but it can be inferred". The
//! coverage analyzer reproduces those stars by running this engine and
//! checking which tracked terms appear only after inference:
//!
//! * `prov:wasInfluencedBy` for Taverna — derived from its asserted
//!   sub-properties (`prov:used`, `prov:wasGeneratedBy`, …);
//! * `prov:Plan` for Taverna — derived from `prov:hadPlan`'s range.
//!
//! The engine also implements communication and derivation inference;
//! the latter is the paper's §5 "ongoing work" (deriving
//! `prov:wasDerivedFrom` from usage/generation chains).

use provbench_rdf::{Graph, Term, Triple};
use provbench_vocab::{self as vocab, prov};

/// Which inference rules to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InferenceRules {
    /// Propagate assertions up the PROV sub-property lattice
    /// (`used ⊑ wasInfluencedBy`, `hadPrimarySource ⊑ wasDerivedFrom`, …).
    pub subproperty_closure: bool,
    /// `_ prov:hadPlan p ⟹ p a prov:Plan` (range of `hadPlan`), and
    /// `q prov:agent a` on a qualified association ⟹ direct
    /// `wasAssociatedWith`.
    pub plans_and_associations: bool,
    /// `a2 prov:used e ∧ e prov:wasGeneratedBy a1 ⟹ a2 prov:wasInformedBy a1`.
    pub communication: bool,
    /// `act prov:used e1 ∧ e2 prov:wasGeneratedBy act ⟹ e2 prov:wasDerivedFrom e1`.
    ///
    /// This is the paper's "ongoing work": it over-approximates (it
    /// assumes every output of an activity depends on every input), which
    /// is exactly why the corpus does not assert it — see §5.
    pub derivation: bool,
    /// `e prov:wasGeneratedBy a ∧ a prov:wasAssociatedWith ag ⟹
    /// e prov:wasAttributedTo ag`.
    pub attribution: bool,
    /// Domain/range typing (`s prov:used o ⟹ s a prov:Activity, o a
    /// prov:Entity`, agent subclasses, `Bundle ⊑ Entity`, `Plan ⊑ Entity`).
    pub typing: bool,
}

impl InferenceRules {
    /// Every rule on.
    pub fn all() -> Self {
        InferenceRules {
            subproperty_closure: true,
            plans_and_associations: true,
            communication: true,
            derivation: true,
            attribution: true,
            typing: true,
        }
    }

    /// Only the schema-level rules the coverage analysis needs (no
    /// derivation/attribution/communication guessing).
    pub fn schema_only() -> Self {
        InferenceRules {
            subproperty_closure: true,
            plans_and_associations: true,
            communication: false,
            derivation: false,
            attribution: false,
            typing: true,
        }
    }

    /// Everything off (useful as a baseline in tests and benches).
    pub fn none() -> Self {
        InferenceRules {
            subproperty_closure: false,
            plans_and_associations: false,
            communication: false,
            derivation: false,
            attribution: false,
            typing: false,
        }
    }
}

/// Apply the selected rules to a copy of `graph` until fixpoint and
/// return the materialized graph (which always contains the input).
pub fn apply_inference(graph: &Graph, rules: &InferenceRules) -> Graph {
    let mut g = graph.clone();
    loop {
        let mut new: Vec<Triple> = Vec::new();
        if rules.subproperty_closure {
            infer_subproperties(&g, &mut new);
        }
        if rules.plans_and_associations {
            infer_plans_and_associations(&g, &mut new);
        }
        if rules.communication {
            infer_communication(&g, &mut new);
        }
        if rules.derivation {
            infer_derivation(&g, &mut new);
        }
        if rules.attribution {
            infer_attribution(&g, &mut new);
        }
        if rules.typing {
            infer_typing(&g, &mut new);
        }
        let mut changed = false;
        for t in new {
            changed |= g.insert(t);
        }
        if !changed {
            return g;
        }
    }
}

fn infer_subproperties(g: &Graph, out: &mut Vec<Triple>) {
    for (sub, sup) in prov::SUBPROPERTY_OF {
        let sub = provbench_rdf::Iri::new_unchecked(*sub);
        let sup = provbench_rdf::Iri::new_unchecked(*sup);
        for t in g.triples_matching(None, Some(&sub), None) {
            out.push(Triple::new(t.subject, sup.clone(), t.object));
        }
    }
}

fn infer_plans_and_associations(g: &Graph, out: &mut Vec<Triple>) {
    // Range of hadPlan: the object is a Plan (hence also an Entity via
    // the typing rule).
    for t in g.triples_matching(None, Some(&prov::had_plan()), None) {
        if let Some(plan) = t.object.as_subject() {
            out.push(Triple::new(plan, vocab::rdf_type(), prov::plan()));
        }
    }
    // Qualified association ⟹ direct association.
    for t in g.triples_matching(None, Some(&prov::qualified_association()), None) {
        let Some(q) = t.object.as_subject() else {
            continue;
        };
        for agent in g.objects(&q, &prov::agent_prop()) {
            out.push(Triple::new(
                t.subject.clone(),
                prov::was_associated_with(),
                agent,
            ));
        }
    }
}

fn infer_communication(g: &Graph, out: &mut Vec<Triple>) {
    for used in g.triples_matching(None, Some(&prov::used()), None) {
        let Some(entity) = used.object.as_subject() else {
            continue;
        };
        for gen in g.triples_matching(Some(&entity), Some(&prov::was_generated_by()), None) {
            // `used.subject` was informed by the generator of the entity,
            // unless they are the same activity.
            if Term::from(used.subject.clone()) != gen.object {
                out.push(Triple::new(
                    used.subject.clone(),
                    prov::was_informed_by(),
                    gen.object,
                ));
            }
        }
    }
}

fn infer_derivation(g: &Graph, out: &mut Vec<Triple>) {
    for gen in g.triples_matching(None, Some(&prov::was_generated_by()), None) {
        let Some(activity) = gen.object.as_subject() else {
            continue;
        };
        for used in g.triples_matching(Some(&activity), Some(&prov::used()), None) {
            if Term::from(gen.subject.clone()) != used.object {
                out.push(Triple::new(
                    gen.subject.clone(),
                    prov::was_derived_from(),
                    used.object,
                ));
            }
        }
    }
}

fn infer_attribution(g: &Graph, out: &mut Vec<Triple>) {
    for gen in g.triples_matching(None, Some(&prov::was_generated_by()), None) {
        let Some(activity) = gen.object.as_subject() else {
            continue;
        };
        for assoc in g.triples_matching(Some(&activity), Some(&prov::was_associated_with()), None) {
            out.push(Triple::new(
                gen.subject.clone(),
                prov::was_attributed_to(),
                assoc.object,
            ));
        }
    }
}

fn type_both(
    g: &Graph,
    p: &provbench_rdf::Iri,
    s_class: Option<&provbench_rdf::Iri>,
    o_class: Option<&provbench_rdf::Iri>,
    out: &mut Vec<Triple>,
) {
    for t in g.triples_matching(None, Some(p), None) {
        if let Some(c) = s_class {
            out.push(Triple::new(t.subject.clone(), vocab::rdf_type(), c.clone()));
        }
        if let (Some(c), Some(o)) = (o_class, t.object.as_subject()) {
            out.push(Triple::new(o, vocab::rdf_type(), c.clone()));
        }
    }
}

fn infer_typing(g: &Graph, out: &mut Vec<Triple>) {
    let entity = prov::entity();
    let activity = prov::activity();
    let agent = prov::agent();
    type_both(g, &prov::used(), Some(&activity), Some(&entity), out);
    type_both(
        g,
        &prov::was_generated_by(),
        Some(&entity),
        Some(&activity),
        out,
    );
    type_both(
        g,
        &prov::was_associated_with(),
        Some(&activity),
        Some(&agent),
        out,
    );
    type_both(
        g,
        &prov::was_attributed_to(),
        Some(&entity),
        Some(&agent),
        out,
    );
    type_both(
        g,
        &prov::was_informed_by(),
        Some(&activity),
        Some(&activity),
        out,
    );
    type_both(
        g,
        &prov::was_derived_from(),
        Some(&entity),
        Some(&entity),
        out,
    );
    type_both(
        g,
        &prov::had_primary_source(),
        Some(&entity),
        Some(&entity),
        out,
    );
    type_both(
        g,
        &prov::acted_on_behalf_of(),
        Some(&agent),
        Some(&agent),
        out,
    );
    // Subclass axioms.
    for (sub, sup) in [
        (prov::person(), agent.clone()),
        (prov::software_agent(), agent.clone()),
        (prov::organization(), agent),
        (prov::bundle(), entity.clone()),
        (prov::plan(), entity),
    ] {
        let sub_term: Term = sub.into();
        for t in g.triples_matching(None, Some(&vocab::rdf_type()), Some(&sub_term)) {
            out.push(Triple::new(t.subject, vocab::rdf_type(), sup.clone()));
        }
    }
}

/// Convenience: whether `graph` asserts class membership for any subject.
pub fn any_instance_of(graph: &Graph, class: &provbench_rdf::Iri) -> bool {
    let term: Term = class.clone().into();
    graph
        .triples_matching(None, Some(&vocab::rdf_type()), Some(&term))
        .next()
        .is_some()
}

/// Convenience: whether `graph` asserts any triple with this predicate.
pub fn any_use_of(graph: &Graph, property: &provbench_rdf::Iri) -> bool {
    graph
        .triples_matching(None, Some(property), None)
        .next()
        .is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_rdf::{BlankNode, Iri};

    fn iri(s: &str) -> Iri {
        Iri::new(s).unwrap()
    }

    fn g_with(triples: &[(&str, Iri, &str)]) -> Graph {
        triples
            .iter()
            .map(|(s, p, o)| Triple::new(iri(s), p.clone(), iri(o)))
            .collect()
    }

    #[test]
    fn subproperty_closure_reaches_influence() {
        let g = g_with(&[("http://e/act", prov::used(), "http://e/data")]);
        let inf = apply_inference(&g, &InferenceRules::schema_only());
        assert!(inf.contains(&Triple::new(
            iri("http://e/act"),
            prov::was_influenced_by(),
            iri("http://e/data")
        )));
    }

    #[test]
    fn primary_source_is_transitively_closed() {
        let g = g_with(&[("http://e/d", prov::had_primary_source(), "http://e/s")]);
        let inf = apply_inference(&g, &InferenceRules::schema_only());
        assert!(any_use_of(&inf, &prov::was_derived_from()));
        assert!(any_use_of(&inf, &prov::was_influenced_by()));
    }

    #[test]
    fn had_plan_types_the_plan() {
        let mut g = Graph::new();
        let q = BlankNode::new("q0").unwrap();
        g.insert(Triple::new(
            iri("http://e/act"),
            prov::qualified_association(),
            q.clone(),
        ));
        g.insert(Triple::new(
            q.clone(),
            prov::agent_prop(),
            iri("http://e/engine"),
        ));
        g.insert(Triple::new(q, prov::had_plan(), iri("http://e/wf")));
        let inf = apply_inference(&g, &InferenceRules::schema_only());
        assert!(any_instance_of(&inf, &prov::plan()));
        // Qualified → direct association.
        assert!(inf.contains(&Triple::new(
            iri("http://e/act"),
            prov::was_associated_with(),
            iri("http://e/engine")
        )));
        // Plan ⊑ Entity typing follows.
        assert!(inf.contains(&Triple::new(
            iri("http://e/wf"),
            vocab::rdf_type(),
            prov::entity()
        )));
    }

    #[test]
    fn communication_inference() {
        let g = g_with(&[
            ("http://e/out", prov::was_generated_by(), "http://e/a1"),
            ("http://e/a2", prov::used(), "http://e/out"),
        ]);
        let inf = apply_inference(&g, &InferenceRules::all());
        assert!(inf.contains(&Triple::new(
            iri("http://e/a2"),
            prov::was_informed_by(),
            iri("http://e/a1")
        )));
        // Not reflexive.
        assert!(!inf.contains(&Triple::new(
            iri("http://e/a1"),
            prov::was_informed_by(),
            iri("http://e/a1")
        )));
    }

    #[test]
    fn derivation_inference_connects_io() {
        let g = g_with(&[
            ("http://e/act", prov::used(), "http://e/in"),
            ("http://e/out", prov::was_generated_by(), "http://e/act"),
        ]);
        let inf = apply_inference(&g, &InferenceRules::all());
        assert!(inf.contains(&Triple::new(
            iri("http://e/out"),
            prov::was_derived_from(),
            iri("http://e/in")
        )));
        // Derivation is not inferred under schema_only rules.
        let schema = apply_inference(&g, &InferenceRules::schema_only());
        assert!(!any_use_of(&schema, &prov::was_derived_from()));
    }

    #[test]
    fn attribution_inference() {
        let g = g_with(&[
            ("http://e/out", prov::was_generated_by(), "http://e/act"),
            (
                "http://e/act",
                prov::was_associated_with(),
                "http://e/engine",
            ),
        ]);
        let inf = apply_inference(&g, &InferenceRules::all());
        assert!(inf.contains(&Triple::new(
            iri("http://e/out"),
            prov::was_attributed_to(),
            iri("http://e/engine")
        )));
    }

    #[test]
    fn typing_rules_assign_domains_and_ranges() {
        let g = g_with(&[("http://e/act", prov::used(), "http://e/data")]);
        let inf = apply_inference(&g, &InferenceRules::schema_only());
        assert!(inf.contains(&Triple::new(
            iri("http://e/act"),
            vocab::rdf_type(),
            prov::activity()
        )));
        assert!(inf.contains(&Triple::new(
            iri("http://e/data"),
            vocab::rdf_type(),
            prov::entity()
        )));
    }

    #[test]
    fn inference_is_monotone_and_idempotent() {
        let g = g_with(&[
            ("http://e/act", prov::used(), "http://e/in"),
            ("http://e/out", prov::was_generated_by(), "http://e/act"),
            (
                "http://e/act",
                prov::was_associated_with(),
                "http://e/agent",
            ),
        ]);
        let once = apply_inference(&g, &InferenceRules::all());
        // Monotone: the input is contained.
        for t in g.iter() {
            assert!(once.contains(&t));
        }
        // Idempotent: a second application adds nothing.
        let twice = apply_inference(&once, &InferenceRules::all());
        assert_eq!(once, twice);
    }

    #[test]
    fn none_rules_is_identity() {
        let g = g_with(&[("http://e/act", prov::used(), "http://e/in")]);
        assert_eq!(apply_inference(&g, &InferenceRules::none()), g);
    }
}
