//! Property tests for the PROV toolkit: document → RDF → document
//! structural recovery, inference monotonicity/idempotence on random
//! PROV graphs, and validator sanity.

use proptest::prelude::*;
use provbench_prov::builder::DocumentBuilder;
use provbench_prov::from_rdf::graph_to_document;
use provbench_prov::inference::{apply_inference, InferenceRules};
use provbench_prov::model::{AgentKind, Document};
use provbench_prov::to_rdf::{document_to_graph, ProfileOptions};
use provbench_prov::validate;
use provbench_rdf::{DateTime, Graph, Iri, Triple};
use provbench_vocab::prov;

/// A random but well-formed PROV document: entities, activities with
/// ordered intervals, agents, and relations among declared nodes.
fn arb_document() -> impl Strategy<Value = Document> {
    (
        1usize..6,                                               // entities
        1usize..4,                                               // activities
        1usize..3,                                               // agents
        proptest::collection::vec((0usize..6, 0usize..4), 0..8), // used edges
        proptest::collection::vec((0usize..6, 0usize..4), 0..8), // generated edges
        any::<u64>(),
    )
        .prop_map(|(ne, na, nag, used, generated, salt)| {
            let mut b = DocumentBuilder::new(format!("http://prop.test/{salt}/"));
            let entities: Vec<Iri> = (0..ne).map(|i| b.entity(&format!("e{i}")).id()).collect();
            let activities: Vec<Iri> = (0..na)
                .map(|i| {
                    b.activity(&format!("a{i}"))
                        .started(DateTime::from_unix_millis(i as i64 * 1000))
                        .ended(DateTime::from_unix_millis(i as i64 * 1000 + 500))
                        .id()
                })
                .collect();
            let agents: Vec<Iri> = (0..nag)
                .map(|i| b.agent(&format!("g{i}"), AgentKind::Software).id())
                .collect();
            for (e, a) in used {
                // Usage must not precede the entity's generation: the
                // generator of entity k is activity k % na, and activity
                // intervals increase with index, so only later-or-equal
                // activities may consume it.
                let (ei, ai) = (e % ne, a % na);
                if ai >= ei % na {
                    b.used(&activities[ai], &entities[ei], None);
                }
            }
            for (e, a) in generated {
                // One generator per entity to respect unique generation:
                // the activity is a function of the *entity* index only.
                let _ = a;
                let entity_idx = e % ne;
                b.generated(&entities[entity_idx], &activities[entity_idx % na], None);
            }
            for (i, a) in activities.iter().enumerate() {
                b.associated(a, &agents[i % nag], None);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn document_rdf_roundtrip_preserves_nodes(doc in arb_document()) {
        for opts in [ProfileOptions::taverna(), ProfileOptions::wings()] {
            let g = document_to_graph(&doc, opts);
            let back = graph_to_document(&g);
            prop_assert_eq!(back.entities.len(), doc.entities.len());
            prop_assert_eq!(back.activities.len(), doc.activities.len());
            prop_assert_eq!(back.agents.len(), doc.agents.len());
            // Times survive.
            for (id, a) in &doc.activities {
                let r = &back.activities[id];
                prop_assert_eq!(r.started, a.started);
                prop_assert_eq!(r.ended, a.ended);
            }
            // Relation multiset sizes match: RDF is a set, so duplicate
            // relations collapse — compare deduplicated counts.
            let mut rels: Vec<String> = doc.relations.iter().map(|r| format!("{r:?}")).collect();
            rels.sort();
            rels.dedup();
            prop_assert_eq!(back.relations.len(), rels.len());
        }
    }

    #[test]
    fn inference_is_monotone_and_idempotent(doc in arb_document()) {
        let g = document_to_graph(&doc, ProfileOptions::taverna());
        for rules in [InferenceRules::schema_only(), InferenceRules::all()] {
            let once = apply_inference(&g, &rules);
            for t in g.iter() {
                prop_assert!(once.contains(&t));
            }
            let twice = apply_inference(&once, &rules);
            prop_assert_eq!(&once, &twice);
        }
    }

    #[test]
    fn subproperty_closure_is_complete(doc in arb_document()) {
        let g = document_to_graph(&doc, ProfileOptions::taverna());
        let inf = apply_inference(&g, &InferenceRules::schema_only());
        // Every asserted sub-property triple has its super-property
        // counterpart in the closure.
        for (sub, sup) in prov::SUBPROPERTY_OF {
            let sub = Iri::new_unchecked(*sub);
            let sup = Iri::new_unchecked(*sup);
            for t in g.triples_matching(None, Some(&sub), None) {
                prop_assert!(inf.contains(&Triple::new(t.subject, sup.clone(), t.object)));
            }
        }
    }

    #[test]
    fn well_formed_documents_validate(doc in arb_document()) {
        let g = document_to_graph(&doc, ProfileOptions::taverna());
        let violations = validate(&g);
        prop_assert!(violations.is_empty(), "unexpected violations: {violations:?}");
    }

    #[test]
    fn empty_rules_are_identity(doc in arb_document()) {
        let g = document_to_graph(&doc, ProfileOptions::wings());
        prop_assert_eq!(apply_inference(&g, &InferenceRules::none()), g);
    }
}

#[test]
fn graph_to_document_tolerates_arbitrary_rdf() {
    // Non-PROV graphs produce empty-but-sane documents.
    let mut g = Graph::new();
    g.insert(Triple::new(
        Iri::new("http://x/a").unwrap(),
        Iri::new("http://x/p").unwrap(),
        Iri::new("http://x/b").unwrap(),
    ));
    let doc = graph_to_document(&g);
    assert!(doc.entities.is_empty());
    assert_eq!(doc.relations.len(), 1); // preserved as Other
}
