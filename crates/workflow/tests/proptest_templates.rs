//! Property tests: the template generator only emits valid DAGs, and the
//! executor maintains its scheduling/dataflow invariants for any seed,
//! epoch and failure injection.

use proptest::prelude::*;
use provbench_workflow::domains::DOMAINS;
use provbench_workflow::execution::{
    execute, ExecutionConfig, FailureKind, FailureSpec, ProcessStatus, RunStatus,
};
use provbench_workflow::generate::generate_template;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn template_for(
    seed: u64,
    domain_idx: usize,
    taverna: bool,
) -> provbench_workflow::WorkflowTemplate {
    let mut rng = StdRng::seed_from_u64(seed);
    let system = if taverna {
        provbench_workflow::System::Taverna
    } else {
        provbench_workflow::System::Wings
    };
    generate_template(&DOMAINS[domain_idx % DOMAINS.len()], system, 0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_templates_are_always_valid(
        seed in any::<u64>(),
        domain in 0usize..12,
        taverna in any::<bool>(),
    ) {
        let t = template_for(seed, domain, taverna);
        prop_assert_eq!(t.validate(), Ok(()));
        let order = t.topological_order().expect("valid templates are acyclic");
        prop_assert_eq!(order.len(), t.processors.len());
        // Topological order respects every dependency edge.
        let pos: Vec<usize> = {
            let mut pos = vec![0; order.len()];
            for (i, &p) in order.iter().enumerate() {
                pos[p] = i;
            }
            pos
        };
        for (a, b) in t.processor_edges() {
            prop_assert!(pos[a] < pos[b], "edge {a}->{b} violated");
        }
    }

    #[test]
    fn execution_respects_dataflow_timing(
        seed in any::<u64>(),
        domain in 0usize..12,
        exec_seed in any::<u64>(),
        epoch in 0u64..5,
    ) {
        let t = template_for(seed, domain, true);
        let mut config = ExecutionConfig::new(0, exec_seed, "prop");
        config.environment_epoch = epoch;
        let run = execute(&t, &config);
        prop_assert_eq!(run.status, RunStatus::Success);

        // Each process starts no earlier than every producer of its
        // inputs finished; artifact ids are in bounds.
        let produced_at = |artifact: usize| {
            run.processes
                .iter()
                .find(|p| p.outputs.contains(&artifact))
                .and_then(|p| p.ended_ms)
        };
        for p in &run.processes {
            prop_assert_eq!(p.status, ProcessStatus::Completed);
            let started = p.started_ms.expect("completed processes have times");
            prop_assert!(p.ended_ms.expect("ended") >= started);
            for &input in &p.inputs {
                prop_assert!(input < run.artifacts.len());
                if let Some(at) = produced_at(input) {
                    prop_assert!(started >= at, "{} consumed input before it existed", p.name);
                }
            }
        }
        // Run interval covers every process interval.
        for p in &run.processes {
            prop_assert!(p.started_ms.unwrap() >= run.started_ms);
            prop_assert!(p.ended_ms.unwrap() <= run.ended_ms);
        }
        // Delivered outputs reference real artifacts.
        for &o in run.outputs.iter().chain(&run.inputs) {
            prop_assert!(o < run.artifacts.len());
        }
    }

    #[test]
    fn failure_injection_partitions_processes(
        seed in any::<u64>(),
        domain in 0usize..12,
        failed_proc in 0usize..9,
        kind_idx in 0usize..4,
    ) {
        let t = template_for(seed, domain, false);
        let failed_proc = failed_proc % t.processors.len();
        let mut config = ExecutionConfig::new(0, seed, "prop");
        let kind = FailureKind::ALL[kind_idx];
        config.failure = Some(FailureSpec { processor: failed_proc, kind });
        let run = execute(&t, &config);
        prop_assert_eq!(run.status, RunStatus::Failed(kind));

        let downstream = t.downstream_of(failed_proc);
        for p in &run.processes {
            if p.processor == failed_proc {
                prop_assert_eq!(p.status, ProcessStatus::Failed(kind));
                prop_assert!(p.outputs.is_empty());
            } else if downstream.contains(&p.processor) {
                prop_assert_eq!(p.status, ProcessStatus::Skipped);
                prop_assert!(p.started_ms.is_none() && p.ended_ms.is_none());
            } else {
                prop_assert_eq!(p.status, ProcessStatus::Completed);
            }
        }
    }

    #[test]
    fn reruns_share_inputs_and_nonvolatile_outputs(
        seed in any::<u64>(),
        domain in 0usize..12,
        epoch_a in 0u64..3,
        epoch_b in 3u64..6,
    ) {
        let mut t = template_for(seed, domain, true);
        // Force determinism question: clear volatility everywhere.
        for p in &mut t.processors {
            p.volatile = false;
        }
        let mut ca = ExecutionConfig::new(0, 1, "prop");
        ca.input_seed = 7;
        ca.environment_epoch = epoch_a;
        let mut cb = ExecutionConfig::new(1_000_000, 2, "prop");
        cb.input_seed = 7;
        cb.environment_epoch = epoch_b;
        let (ra, rb) = (execute(&t, &ca), execute(&t, &cb));
        // Same inputs…
        let ins = |r: &provbench_workflow::WorkflowRun| -> Vec<u64> {
            r.inputs.iter().map(|&i| r.artifacts[i].checksum).collect()
        };
        prop_assert_eq!(ins(&ra), ins(&rb));
        // …and with no volatile steps, identical outputs regardless of
        // epoch and jitter seed.
        let outs = |r: &provbench_workflow::WorkflowRun| -> Vec<u64> {
            r.outputs.iter().map(|&i| r.artifacts[i].checksum).collect()
        };
        prop_assert_eq!(outs(&ra), outs(&rb));
    }
}
