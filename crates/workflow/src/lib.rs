//! # provbench-workflow
//!
//! The workflow substrate of the ProvBench reproduction: dataflow
//! templates ([`model`]), the paper's 12 application domains and the
//! seeded template generator that stands in for the 120 real workflows
//! ([`domains`], [`generate`]), and a deterministic virtual-clock
//! executor with failure injection ([`execution`]).
//!
//! This crate is engine-agnostic: `provbench-taverna` and
//! `provbench-wings` both execute these templates and differ only in how
//! they *record* what happened.

pub mod domains;
pub mod execution;
pub mod generate;
pub mod model;

pub use domains::{DomainSpec, System, DOMAINS};
pub use execution::{
    ExecutedProcess, ExecutionConfig, FailureKind, FailureSpec, ProcessStatus, RunStatus,
    WorkflowRun,
};
pub use generate::generate_template;
pub use model::{DataLink, Port, PortRef, Processor, TemplateError, WorkflowTemplate};
