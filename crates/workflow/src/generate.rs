//! Seeded synthetic workflow-template generation.
//!
//! Stands in for the paper's 120 real workflows (see DESIGN.md §2): for
//! each domain/system pair the generator produces layered dataflow DAGs
//! with domain-flavoured step and data names, realistic size spread
//! (3–9 processors), occasional nested sub-workflows for Taverna, and
//! service bindings for Wings components. Everything is driven by a
//! `StdRng`, so a given seed always yields the identical corpus.

use crate::domains::{DomainSpec, System, DOMAINS};
use crate::model::{DataLink, Port, PortRef, Processor, WorkflowTemplate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Short slug for file and IRI names.
fn slug(name: &str) -> String {
    name.to_ascii_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Pick a step name, de-duplicating with a numeric suffix when the
/// domain vocabulary is exhausted.
fn step_name(domain: &DomainSpec, i: usize) -> String {
    let base = domain.steps[i % domain.steps.len()];
    if i < domain.steps.len() {
        base.to_owned()
    } else {
        format!("{base}_{}", i / domain.steps.len() + 1)
    }
}

fn data_name(domain: &DomainSpec, i: usize) -> String {
    let base = domain.data[i % domain.data.len()];
    if i < domain.data.len() {
        base.to_owned()
    } else {
        format!("{base}_{}", i / domain.data.len() + 1)
    }
}

/// Generate one template for `domain` on `system`; `index` distinguishes
/// the domain's workflows and feeds the name.
pub fn generate_template(
    domain: &DomainSpec,
    system: System,
    index: usize,
    rng: &mut StdRng,
) -> WorkflowTemplate {
    let sys_tag = match system {
        System::Taverna => "tav",
        System::Wings => "wgs",
    };
    let name = format!("{}_{}_{:03}", slug(domain.name), sys_tag, index);
    let title = format!(
        "{} {} workflow #{index}",
        domain.name,
        domain.steps[index % domain.steps.len()].replace('_', " ")
    );
    let mut t = build_dag(domain, system, name, title, rng, true);
    debug_assert_eq!(t.validate(), Ok(()), "generator produced invalid template");
    // Re-check in release builds of the corpus generator too: a broken
    // template would poison every downstream experiment.
    if t.validate().is_err() {
        // Fall back to a minimal pipeline rather than panic in release.
        t = build_pipeline(domain, system, t.name.clone(), t.title.clone(), 3);
    }
    t
}

/// Layered-DAG construction. `allow_nested` enables Taverna sub-workflows.
fn build_dag(
    domain: &DomainSpec,
    system: System,
    name: String,
    title: String,
    rng: &mut StdRng,
    allow_nested: bool,
) -> WorkflowTemplate {
    let mut t = WorkflowTemplate::new(name, title, domain.name);
    let n_inputs = rng.gen_range(1..=3usize);
    for i in 0..n_inputs {
        t.inputs.push(Port::new(data_name(domain, i)));
    }
    let n_procs = rng.gen_range(3..=9usize);

    // Available sources as we sweep in topological construction order.
    let mut sources: Vec<PortRef> = (0..n_inputs).map(PortRef::WorkflowInput).collect();

    for pi in 0..n_procs {
        let mut p = Processor::new(step_name(domain, pi));
        let n_in = rng.gen_range(1..=2usize.min(sources.len()));
        let n_out = rng.gen_range(1..=2usize);
        for ii in 0..n_in {
            p.inputs.push(Port::new(format!("in_{ii}")));
        }
        for oi in 0..n_out {
            p.outputs.push(Port::new(format!("out_{oi}")));
        }
        p.mean_duration_ms = rng.gen_range(200..=5_000);
        p.volatile = rng.gen_bool(0.3);
        p.service = Some(format!(
            "http://components.{}.org/{}/{}",
            match system {
                System::Taverna => "biocatalogue",
                System::Wings => "wings-components",
            },
            slug(domain.name),
            p.name,
        ));
        t.processors.push(p);
        // Wire inputs from earlier sources (guarantees acyclicity).
        for ii in 0..n_in {
            let src = sources[rng.gen_range(0..sources.len())];
            t.links.push(DataLink {
                source: src,
                sink: PortRef::ProcessorInput {
                    processor: pi,
                    port: ii,
                },
            });
        }
        for oi in 0..n_out {
            sources.push(PortRef::ProcessorOutput {
                processor: pi,
                port: oi,
            });
        }
    }

    // Workflow outputs from the last processors' outputs, distinct sinks.
    let proc_outputs: Vec<PortRef> = sources
        .iter()
        .copied()
        .filter(|s| matches!(s, PortRef::ProcessorOutput { .. }))
        .collect();
    let n_outputs = rng.gen_range(1..=2usize.min(proc_outputs.len()));
    for oi in 0..n_outputs {
        t.outputs.push(Port::new(data_name(domain, n_inputs + oi)));
        // Prefer late outputs so the workflow "ends" somewhere sensible.
        let src = proc_outputs[proc_outputs.len() - 1 - oi];
        t.links.push(DataLink {
            source: src,
            sink: PortRef::WorkflowOutput(oi),
        });
    }

    // Taverna workflows occasionally nest a sub-workflow (the paper notes
    // wasInformedBy expresses exactly this connection).
    if allow_nested && system == System::Taverna && rng.gen_bool(0.25) {
        let sub_name = format!("{}_sub", t.name);
        let sub = build_pipeline(
            domain,
            system,
            sub_name,
            format!("{} (nested)", t.title),
            rng.gen_range(2..=3usize),
        );
        let host = rng.gen_range(0..t.processors.len());
        t.processors[host].sub_workflow = Some(0);
        t.processors[host].service = None;
        t.nested.push(sub);
    }
    t
}

/// Deterministic minimal pipeline (also the fallback topology).
fn build_pipeline(
    domain: &DomainSpec,
    system: System,
    name: String,
    title: String,
    len: usize,
) -> WorkflowTemplate {
    let mut t = WorkflowTemplate::new(name, title, domain.name);
    t.inputs.push(Port::new(data_name(domain, 0)));
    t.outputs.push(Port::new(data_name(domain, 1)));
    for i in 0..len {
        let mut p = Processor::new(step_name(domain, i));
        p.inputs.push(Port::new("in_0"));
        p.outputs.push(Port::new("out_0"));
        p.mean_duration_ms = 500 + 300 * i as u64;
        p.service = Some(format!(
            "http://components.{}.org/{}/{}",
            match system {
                System::Taverna => "biocatalogue",
                System::Wings => "wings-components",
            },
            slug(domain.name),
            p.name
        ));
        t.processors.push(p);
        let source = if i == 0 {
            PortRef::WorkflowInput(0)
        } else {
            PortRef::ProcessorOutput {
                processor: i - 1,
                port: 0,
            }
        };
        t.links.push(DataLink {
            source,
            sink: PortRef::ProcessorInput {
                processor: i,
                port: 0,
            },
        });
    }
    t.links.push(DataLink {
        source: PortRef::ProcessorOutput {
            processor: len - 1,
            port: 0,
        },
        sink: PortRef::WorkflowOutput(0),
    });
    t
}

/// Generate the full 120-workflow catalog, deterministically from `seed`.
///
/// Workflows come out grouped by domain in [`DOMAINS`] order, Taverna
/// before Wings within each domain.
pub fn generate_catalog(seed: u64) -> Vec<(System, WorkflowTemplate)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(crate::domains::total_workflows());
    for domain in DOMAINS {
        for i in 0..domain.taverna_workflows {
            out.push((
                System::Taverna,
                generate_template(domain, System::Taverna, i, &mut rng),
            ));
        }
        for i in 0..domain.wings_workflows {
            out.push((
                System::Wings,
                generate_template(domain, System::Wings, i, &mut rng),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_120_valid_workflows() {
        let catalog = generate_catalog(42);
        assert_eq!(catalog.len(), 120);
        for (_, t) in &catalog {
            assert_eq!(t.validate(), Ok(()), "invalid: {}", t.name);
        }
    }

    #[test]
    fn catalog_is_deterministic() {
        assert_eq!(generate_catalog(42), generate_catalog(42));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_catalog(1);
        let b = generate_catalog(2);
        assert_ne!(a, b);
    }

    #[test]
    fn system_split_matches_domains() {
        let catalog = generate_catalog(42);
        let tav = catalog
            .iter()
            .filter(|(s, _)| *s == System::Taverna)
            .count();
        let wgs = catalog.iter().filter(|(s, _)| *s == System::Wings).count();
        assert_eq!(tav, 68);
        assert_eq!(wgs, 52);
    }

    #[test]
    fn names_are_unique() {
        let catalog = generate_catalog(42);
        let mut names: Vec<_> = catalog.iter().map(|(_, t)| t.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 120);
    }

    #[test]
    fn only_taverna_nests() {
        let catalog = generate_catalog(42);
        for (sys, t) in &catalog {
            if *sys == System::Wings {
                assert!(t.nested.is_empty(), "Wings workflow {} nests", t.name);
            }
        }
        // With p=0.25 over 68 Taverna workflows, some nesting must occur.
        assert!(catalog
            .iter()
            .any(|(s, t)| *s == System::Taverna && !t.nested.is_empty()));
    }

    #[test]
    fn wings_processors_have_services() {
        let catalog = generate_catalog(42);
        for (sys, t) in &catalog {
            if *sys == System::Wings {
                for p in &t.processors {
                    assert!(p.service.is_some(), "{}.{} lacks a service", t.name, p.name);
                }
            }
        }
    }

    #[test]
    fn pipeline_builder_is_valid() {
        let d = &DOMAINS[0];
        let t = build_pipeline(d, System::Taverna, "p".into(), "P".into(), 4);
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.processors.len(), 4);
    }
}
