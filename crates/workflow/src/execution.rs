//! Deterministic virtual-clock execution of workflow templates with
//! failure injection.
//!
//! The corpus paper reports 198 runs of which 30 failed, with causes like
//! "unavailability of third party resources, illegal input values, etc.";
//! the executor reproduces this: a [`FailureSpec`] makes one processor
//! fail, its downstream closure is skipped, and the run yields a
//! *partial* trace — exactly what makes failed-run provenance useful for
//! the debugging and decay applications of the paper's §3.

use crate::model::{PortRef, WorkflowTemplate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Why a process (and hence its run) failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// A third-party resource was unavailable (the paper's lead example).
    ServiceUnavailable,
    /// An illegal input value was supplied (the paper's second example).
    IllegalInputValue,
    /// The step exceeded its time budget.
    Timeout,
    /// The step received data it could not parse.
    DataFormatError,
}

impl FailureKind {
    /// All failure kinds, for round-robin assignment.
    pub const ALL: [FailureKind; 4] = [
        FailureKind::ServiceUnavailable,
        FailureKind::IllegalInputValue,
        FailureKind::Timeout,
        FailureKind::DataFormatError,
    ];

    /// Human-readable description, used in trace annotations.
    pub fn description(&self) -> &'static str {
        match self {
            FailureKind::ServiceUnavailable => "unavailability of third party resources",
            FailureKind::IllegalInputValue => "illegal input values",
            FailureKind::Timeout => "execution timeout",
            FailureKind::DataFormatError => "malformed intermediate data",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.description())
    }
}

/// Inject a failure into one processor of the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FailureSpec {
    /// Index of the processor that fails.
    pub processor: usize,
    /// How it fails.
    pub kind: FailureKind,
}

/// Everything that parameterizes one run.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionConfig {
    /// Virtual wall-clock start (Unix millis).
    pub started_at_ms: i64,
    /// Seed for duration jitter and other per-run randomness.
    pub seed: u64,
    /// Seed for the workflow *input* values. Runs of the same template
    /// that share this seed consume identical inputs — the precondition
    /// for meaningful decay comparison across a longitudinal series.
    pub input_seed: u64,
    /// External-world epoch: volatile processors produce different
    /// outputs under different epochs, simulating workflow decay.
    pub environment_epoch: u64,
    /// Optional injected failure.
    pub failure: Option<FailureSpec>,
    /// The person who launched the run (the paper's Q5).
    pub user: String,
    /// Extra filler bytes appended to every artifact value, to scale the
    /// corpus toward the paper's 360 MB when desired.
    pub value_payload: usize,
}

impl ExecutionConfig {
    /// A plain successful-run configuration.
    pub fn new(started_at_ms: i64, seed: u64, user: impl Into<String>) -> Self {
        ExecutionConfig {
            started_at_ms,
            seed,
            input_seed: seed,
            environment_epoch: 0,
            failure: None,
            user: user.into(),
            value_payload: 0,
        }
    }
}

/// Outcome of one executed (or skipped) process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessStatus {
    /// Ran to completion.
    Completed,
    /// Failed with the given cause.
    Failed(FailureKind),
    /// Never ran because an upstream process failed.
    Skipped,
}

/// Outcome of a whole run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// All processes completed.
    Success,
    /// Some process failed with the given cause.
    Failed(FailureKind),
}

/// A concrete data item consumed or produced during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactData {
    /// Run-local artifact id.
    pub id: usize,
    /// Name, derived from the producing port.
    pub name: String,
    /// The (simulated) content.
    pub value: String,
    /// Content size in bytes.
    pub size_bytes: usize,
    /// FNV-1a checksum of the content — what decay detection compares.
    pub checksum: u64,
}

/// One process run within a workflow run.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutedProcess {
    /// Index into the template's processors.
    pub processor: usize,
    /// Processor name (copied for convenience).
    pub name: String,
    /// The service/component invoked, if any.
    pub service: Option<String>,
    /// Virtual start time (None when skipped).
    pub started_ms: Option<i64>,
    /// Virtual end time (None when skipped).
    pub ended_ms: Option<i64>,
    /// Consumed artifact ids.
    pub inputs: Vec<usize>,
    /// Produced artifact ids (empty when failed/skipped).
    pub outputs: Vec<usize>,
    /// Outcome.
    pub status: ProcessStatus,
    /// The nested run, when this process hosts a sub-workflow.
    pub sub_run: Option<Box<WorkflowRun>>,
}

/// A complete (possibly partial, if failed) workflow run.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkflowRun {
    /// The executed template's name.
    pub template_name: String,
    /// Virtual start time.
    pub started_ms: i64,
    /// Virtual end time (last process end, or start when nothing ran).
    pub ended_ms: i64,
    /// Outcome.
    pub status: RunStatus,
    /// Who launched the run.
    pub user: String,
    /// Per-process records, in execution order.
    pub processes: Vec<ExecutedProcess>,
    /// All artifacts touched by the run, by id.
    pub artifacts: Vec<ArtifactData>,
    /// Artifact ids bound to the workflow's input ports.
    pub inputs: Vec<usize>,
    /// Artifact ids delivered to workflow output ports (missing outputs
    /// of failed runs simply don't appear).
    pub outputs: Vec<usize>,
}

impl WorkflowRun {
    /// Whether the run failed.
    pub fn failed(&self) -> bool {
        matches!(self.status, RunStatus::Failed(_))
    }

    /// The failed process record, if any.
    pub fn failed_process(&self) -> Option<&ExecutedProcess> {
        self.processes
            .iter()
            .find(|p| matches!(p.status, ProcessStatus::Failed(_)))
    }
}

/// FNV-1a, used for artifact checksums (stable across platforms).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn make_artifact(
    artifacts: &mut Vec<ArtifactData>,
    name: String,
    value: String,
    payload: usize,
) -> usize {
    let id = artifacts.len();
    let mut value = value;
    if payload > 0 {
        // Deterministic filler derived from the value itself.
        let seed = fnv1a(value.as_bytes());
        let filler: String = (0..payload)
            .map(|i| {
                let x = seed.wrapping_mul(i as u64 + 1).wrapping_add(i as u64);
                char::from(b'a' + (x % 26) as u8)
            })
            .collect();
        value.push(':');
        value.push_str(&filler);
    }
    let checksum = fnv1a(value.as_bytes());
    let size_bytes = value.len();
    artifacts.push(ArtifactData {
        id,
        name,
        value,
        size_bytes,
        checksum,
    });
    id
}

/// Execute `template` under `config`, producing a deterministic run.
pub fn execute(template: &WorkflowTemplate, config: &ExecutionConfig) -> WorkflowRun {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut artifacts: Vec<ArtifactData> = Vec::new();

    // Workflow input artifacts. Values depend on template + port +
    // input_seed so that re-running a template with the same input seed
    // reuses identical inputs.
    let mut available: HashMap<PortRef, (usize, i64)> = HashMap::new();
    let mut wf_inputs = Vec::new();
    for (i, port) in template.inputs.iter().enumerate() {
        let value = format!(
            "{}|{}|seed{}|{:x}",
            template.name,
            port.name,
            config.input_seed,
            fnv1a(format!("{}{}{}", template.name, port.name, config.input_seed).as_bytes())
        );
        let id = make_artifact(
            &mut artifacts,
            port.name.clone(),
            value,
            config.value_payload,
        );
        available.insert(PortRef::WorkflowInput(i), (id, config.started_at_ms));
        wf_inputs.push(id);
    }

    // Source endpoint per processor-input / workflow-output sink.
    let source_of: HashMap<PortRef, PortRef> =
        template.links.iter().map(|l| (l.sink, l.source)).collect();

    let order = template
        .topological_order()
        .expect("executor requires a validated, acyclic template");
    let failed_downstream: Vec<usize> = config
        .failure
        .map(|f| template.downstream_of(f.processor))
        .unwrap_or_default();

    let mut processes: Vec<ExecutedProcess> = Vec::new();
    let mut run_status = RunStatus::Success;

    for &pi in &order {
        let proc_def = &template.processors[pi];
        let failing_here = config.failure.is_some_and(|f| f.processor == pi);
        let skipped = failed_downstream.contains(&pi);

        // Collect this process's inputs (they exist unless upstream failed).
        let mut ins: Vec<usize> = Vec::new();
        let mut ready_at = config.started_at_ms;
        let mut inputs_ok = true;
        for port in 0..proc_def.inputs.len() {
            let sink = PortRef::ProcessorInput {
                processor: pi,
                port,
            };
            match source_of.get(&sink).and_then(|s| available.get(s)) {
                Some(&(id, at)) => {
                    ins.push(id);
                    ready_at = ready_at.max(at);
                }
                None => inputs_ok = false,
            }
        }

        if skipped || !inputs_ok {
            processes.push(ExecutedProcess {
                processor: pi,
                name: proc_def.name.clone(),
                service: proc_def.service.clone(),
                started_ms: None,
                ended_ms: None,
                inputs: ins,
                outputs: Vec::new(),
                status: ProcessStatus::Skipped,
                sub_run: None,
            });
            continue;
        }

        let jitter = rng.gen_range(0..=proc_def.mean_duration_ms / 2 + 1) as i64;
        let duration = proc_def.mean_duration_ms as i64 + jitter;
        let started = ready_at;

        if failing_here {
            let kind = config.failure.expect("checked above").kind;
            // A failing step burns part of its budget then aborts.
            let ended = started + duration / 3 + 1;
            processes.push(ExecutedProcess {
                processor: pi,
                name: proc_def.name.clone(),
                service: proc_def.service.clone(),
                started_ms: Some(started),
                ended_ms: Some(ended),
                inputs: ins,
                outputs: Vec::new(),
                status: ProcessStatus::Failed(kind),
                sub_run: None,
            });
            run_status = RunStatus::Failed(kind);
            continue;
        }

        let ended = started + duration;

        // Nested sub-workflow run (Taverna): executed inside the host step.
        let sub_run = proc_def.sub_workflow.map(|ni| {
            let sub_config = ExecutionConfig {
                started_at_ms: started,
                seed: config.seed.wrapping_add(1 + pi as u64),
                input_seed: config.input_seed.wrapping_add(1 + pi as u64),
                environment_epoch: config.environment_epoch,
                failure: None,
                user: config.user.clone(),
                value_payload: config.value_payload,
            };
            Box::new(execute(&template.nested[ni], &sub_config))
        });

        // Outputs: deterministic function of step, inputs and (for
        // volatile steps) the environment epoch.
        let mut outs = Vec::new();
        let input_digest: u64 = ins
            .iter()
            .fold(0u64, |acc, &id| acc ^ artifacts[id].checksum.rotate_left(7));
        for (oi, oport) in proc_def.outputs.iter().enumerate() {
            let epoch_part = if proc_def.volatile {
                config.environment_epoch
            } else {
                0
            };
            let value = format!(
                "{}.{}|{:x}|epoch{}",
                proc_def.name,
                oport.name,
                input_digest ^ fnv1a(proc_def.name.as_bytes()) ^ (oi as u64),
                epoch_part
            );
            let id = make_artifact(
                &mut artifacts,
                format!("{}_{}", proc_def.name, oport.name),
                value,
                config.value_payload,
            );
            available.insert(
                PortRef::ProcessorOutput {
                    processor: pi,
                    port: oi,
                },
                (id, ended),
            );
            outs.push(id);
        }

        processes.push(ExecutedProcess {
            processor: pi,
            name: proc_def.name.clone(),
            service: proc_def.service.clone(),
            started_ms: Some(started),
            ended_ms: Some(ended),
            inputs: ins,
            outputs: outs,
            status: ProcessStatus::Completed,
            sub_run,
        });
    }

    // Deliverable workflow outputs.
    let mut wf_outputs = Vec::new();
    for oi in 0..template.outputs.len() {
        let sink = PortRef::WorkflowOutput(oi);
        if let Some(&(id, _)) = source_of.get(&sink).and_then(|s| available.get(s)) {
            wf_outputs.push(id);
        }
    }

    let ended_ms = processes
        .iter()
        .filter_map(|p| p.ended_ms)
        .max()
        .unwrap_or(config.started_at_ms);

    WorkflowRun {
        template_name: template.name.clone(),
        started_ms: config.started_at_ms,
        ended_ms,
        status: run_status,
        user: config.user.clone(),
        processes,
        artifacts,
        inputs: wf_inputs,
        outputs: wf_outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::example_template;

    fn cfg(seed: u64) -> ExecutionConfig {
        ExecutionConfig::new(1_358_245_800_000, seed, "alice")
    }

    #[test]
    fn successful_run_produces_all_outputs() {
        let t = example_template();
        let run = execute(&t, &cfg(7));
        assert_eq!(run.status, RunStatus::Success);
        assert!(!run.failed());
        assert_eq!(run.processes.len(), 3);
        assert!(run
            .processes
            .iter()
            .all(|p| p.status == ProcessStatus::Completed));
        assert_eq!(run.outputs.len(), 1);
        assert_eq!(run.inputs.len(), 1);
        assert!(run.ended_ms > run.started_ms);
    }

    #[test]
    fn runs_are_deterministic() {
        let t = example_template();
        assert_eq!(execute(&t, &cfg(7)), execute(&t, &cfg(7)));
        assert_ne!(
            execute(&t, &cfg(7)).artifacts,
            execute(&t, &cfg(8)).artifacts
        );
    }

    #[test]
    fn virtual_clock_orders_processes() {
        let t = example_template();
        let run = execute(&t, &cfg(7));
        for w in run.processes.windows(2) {
            assert!(w[0].ended_ms.unwrap() <= w[1].started_ms.unwrap());
        }
    }

    #[test]
    fn failure_skips_downstream_and_fails_run() {
        let t = example_template();
        let mut c = cfg(7);
        c.failure = Some(FailureSpec {
            processor: 1,
            kind: FailureKind::ServiceUnavailable,
        });
        let run = execute(&t, &c);
        assert_eq!(
            run.status,
            RunStatus::Failed(FailureKind::ServiceUnavailable)
        );
        assert_eq!(run.processes[0].status, ProcessStatus::Completed);
        assert!(matches!(run.processes[1].status, ProcessStatus::Failed(_)));
        assert_eq!(run.processes[2].status, ProcessStatus::Skipped);
        assert!(run.processes[2].started_ms.is_none());
        // The workflow output was never produced.
        assert!(run.outputs.is_empty());
        assert_eq!(run.failed_process().unwrap().processor, 1);
    }

    #[test]
    fn failure_at_source_skips_everything_downstream() {
        let t = example_template();
        let mut c = cfg(7);
        c.failure = Some(FailureSpec {
            processor: 0,
            kind: FailureKind::IllegalInputValue,
        });
        let run = execute(&t, &c);
        assert!(run.failed());
        assert_eq!(
            run.processes
                .iter()
                .filter(|p| p.status == ProcessStatus::Skipped)
                .count(),
            2
        );
    }

    #[test]
    fn volatile_steps_decay_with_epoch() {
        let mut t = example_template();
        t.processors[1].volatile = true;
        let mut c1 = cfg(7);
        c1.environment_epoch = 1;
        let mut c2 = cfg(7);
        c2.environment_epoch = 2;
        let (r1, r2) = (execute(&t, &c1), execute(&t, &c2));
        // Same inputs...
        assert_eq!(r1.artifacts[r1.inputs[0]], r2.artifacts[r2.inputs[0]]);
        // ...different final outputs, because a volatile step drifted.
        let o1 = &r1.artifacts[r1.outputs[0]];
        let o2 = &r2.artifacts[r2.outputs[0]];
        assert_ne!(o1.checksum, o2.checksum);
    }

    #[test]
    fn non_volatile_runs_reproduce_bit_identical_outputs() {
        let t = example_template(); // no volatile steps
        let mut c1 = cfg(7);
        c1.environment_epoch = 1;
        let mut c2 = cfg(7);
        c2.environment_epoch = 99;
        assert_eq!(
            execute(&t, &c1).artifacts.last().unwrap().checksum,
            execute(&t, &c2).artifacts.last().unwrap().checksum
        );
    }

    #[test]
    fn payload_scales_artifact_size() {
        let t = example_template();
        let mut c = cfg(7);
        c.value_payload = 4096;
        let run = execute(&t, &c);
        assert!(run.artifacts.iter().all(|a| a.size_bytes > 4096));
    }

    #[test]
    fn nested_sub_workflow_runs() {
        let mut t = example_template();
        let sub = example_template();
        t.nested.push(sub);
        t.processors[1].sub_workflow = Some(0);
        let run = execute(&t, &cfg(7));
        let host = &run.processes[1];
        let sub_run = host.sub_run.as_ref().expect("nested run recorded");
        assert_eq!(sub_run.status, RunStatus::Success);
        assert_eq!(sub_run.started_ms, host.started_ms.unwrap());
    }

    #[test]
    fn passthrough_template_executes_without_processes() {
        // A template that wires its input straight to its output.
        use crate::model::{DataLink, Port, PortRef, WorkflowTemplate};
        let mut t = WorkflowTemplate::new("pass", "Passthrough", "Testing");
        t.inputs.push(Port::new("in"));
        t.outputs.push(Port::new("out"));
        t.links.push(DataLink {
            source: PortRef::WorkflowInput(0),
            sink: PortRef::WorkflowOutput(0),
        });
        assert_eq!(t.validate(), Ok(()));
        let run = execute(&t, &cfg(1));
        assert_eq!(run.status, RunStatus::Success);
        assert!(run.processes.is_empty());
        assert_eq!(run.inputs, run.outputs);
        assert_eq!(run.ended_ms, run.started_ms);
    }

    #[test]
    fn single_processor_template() {
        use crate::model::{DataLink, Port, PortRef, WorkflowTemplate};
        let mut t = WorkflowTemplate::new("one", "One step", "Testing");
        t.inputs.push(Port::new("in"));
        t.outputs.push(Port::new("out"));
        let mut p = Processor::new("only");
        p.inputs.push(Port::new("i"));
        p.outputs.push(Port::new("o"));
        t.processors.push(p);
        t.links = vec![
            DataLink {
                source: PortRef::WorkflowInput(0),
                sink: PortRef::ProcessorInput {
                    processor: 0,
                    port: 0,
                },
            },
            DataLink {
                source: PortRef::ProcessorOutput {
                    processor: 0,
                    port: 0,
                },
                sink: PortRef::WorkflowOutput(0),
            },
        ];
        let run = execute(&t, &cfg(1));
        assert_eq!(run.processes.len(), 1);
        assert_eq!(run.outputs.len(), 1);
        // Failing the only processor leaves nothing delivered.
        let mut c = cfg(1);
        c.failure = Some(FailureSpec {
            processor: 0,
            kind: FailureKind::Timeout,
        });
        let failed = execute(&t, &c);
        assert!(failed.outputs.is_empty());
        assert!(failed.failed());
    }

    use crate::model::Processor;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
