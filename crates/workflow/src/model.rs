//! Workflow templates: a dataflow DAG of processors wired by data links,
//! with optional nested sub-workflows (a Taverna feature the paper calls
//! out — `prov:wasInformedBy` "is used to express the connection between
//! sub-workflows").

use std::collections::VecDeque;
use std::fmt;

/// A named input or output port.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Port {
    /// Port name, unique within its owner.
    pub name: String,
}

impl Port {
    /// A port with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Port { name: name.into() }
    }
}

/// One step of a workflow template.
#[derive(Clone, Debug, PartialEq)]
pub struct Processor {
    /// Step name, unique within the template.
    pub name: String,
    /// Input ports.
    pub inputs: Vec<Port>,
    /// Output ports.
    pub outputs: Vec<Port>,
    /// The concrete component/service this step invokes (Wings records
    /// these; the paper's Q6 retrieves them).
    pub service: Option<String>,
    /// Index into [`WorkflowTemplate::nested`] when this step runs a
    /// sub-workflow (Taverna only).
    pub sub_workflow: Option<usize>,
    /// Mean simulated duration in milliseconds.
    pub mean_duration_ms: u64,
    /// Whether the step's output depends on volatile external state
    /// (third-party services); drives workflow-decay simulation.
    pub volatile: bool,
}

impl Processor {
    /// A processor with the given name and no ports.
    pub fn new(name: impl Into<String>) -> Self {
        Processor {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            service: None,
            sub_workflow: None,
            mean_duration_ms: 1_000,
            volatile: false,
        }
    }
}

/// One endpoint of a data link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PortRef {
    /// The template's `idx`-th workflow input.
    WorkflowInput(usize),
    /// The template's `idx`-th workflow output.
    WorkflowOutput(usize),
    /// Input port `port` of processor `processor`.
    ProcessorInput {
        /// Processor index.
        processor: usize,
        /// Port index within the processor's inputs.
        port: usize,
    },
    /// Output port `port` of processor `processor`.
    ProcessorOutput {
        /// Processor index.
        processor: usize,
        /// Port index within the processor's outputs.
        port: usize,
    },
}

/// A dataflow edge from a producing endpoint to a consuming endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DataLink {
    /// Where the data comes from (workflow input or processor output).
    pub source: PortRef,
    /// Where the data goes (processor input or workflow output).
    pub sink: PortRef,
}

/// Why a template failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TemplateError {
    /// A link endpoint references a missing processor or port.
    DanglingEndpoint {
        /// The offending endpoint.
        endpoint: String,
    },
    /// A link's source is a consuming endpoint or vice versa.
    WrongDirection {
        /// The offending link, rendered.
        link: String,
    },
    /// A processor input port has no or multiple incoming links.
    BadFanIn {
        /// The processor name.
        processor: String,
        /// The port name.
        port: String,
        /// How many links feed it.
        count: usize,
    },
    /// A workflow output has no or multiple incoming links.
    UnboundOutput {
        /// The output port name.
        output: String,
        /// How many links feed it.
        count: usize,
    },
    /// The dataflow graph has a cycle.
    Cycle,
    /// A processor claims a nested workflow index that does not exist.
    MissingNested {
        /// The processor name.
        processor: String,
    },
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::DanglingEndpoint { endpoint } => {
                write!(f, "dangling link endpoint: {endpoint}")
            }
            TemplateError::WrongDirection { link } => {
                write!(f, "link with wrong direction: {link}")
            }
            TemplateError::BadFanIn {
                processor,
                port,
                count,
            } => {
                write!(
                    f,
                    "input {processor}.{port} has {count} incoming links (want 1)"
                )
            }
            TemplateError::UnboundOutput { output, count } => {
                write!(
                    f,
                    "workflow output {output} has {count} incoming links (want 1)"
                )
            }
            TemplateError::Cycle => write!(f, "dataflow graph has a cycle"),
            TemplateError::MissingNested { processor } => {
                write!(
                    f,
                    "processor {processor} references a missing nested workflow"
                )
            }
        }
    }
}

impl std::error::Error for TemplateError {}

/// A workflow template: the abstract plan both engines execute.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkflowTemplate {
    /// Machine name, unique within the corpus (e.g. `genomics_tav_003`).
    pub name: String,
    /// Human title (e.g. "BLAST sequence annotation").
    pub title: String,
    /// Application domain name (one of the paper's 12).
    pub domain: String,
    /// Workflow-level input ports.
    pub inputs: Vec<Port>,
    /// Workflow-level output ports.
    pub outputs: Vec<Port>,
    /// The steps.
    pub processors: Vec<Processor>,
    /// The dataflow edges.
    pub links: Vec<DataLink>,
    /// Nested sub-workflows (referenced by processor index).
    pub nested: Vec<WorkflowTemplate>,
}

impl WorkflowTemplate {
    /// An empty template shell.
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        domain: impl Into<String>,
    ) -> Self {
        WorkflowTemplate {
            name: name.into(),
            title: title.into(),
            domain: domain.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            processors: Vec::new(),
            links: Vec::new(),
            nested: Vec::new(),
        }
    }

    /// Total processor count including nested sub-workflows.
    pub fn total_processors(&self) -> usize {
        self.processors.len()
            + self
                .nested
                .iter()
                .map(WorkflowTemplate::total_processors)
                .sum::<usize>()
    }

    fn endpoint_valid(&self, e: &PortRef, as_source: bool) -> Result<(), TemplateError> {
        let dangling = |d: String| Err(TemplateError::DanglingEndpoint { endpoint: d });
        match *e {
            PortRef::WorkflowInput(i) => {
                if i >= self.inputs.len() {
                    return dangling(format!("workflow input #{i}"));
                }
                if !as_source {
                    return Err(TemplateError::WrongDirection {
                        link: format!("workflow input #{i} used as sink"),
                    });
                }
            }
            PortRef::WorkflowOutput(i) => {
                if i >= self.outputs.len() {
                    return dangling(format!("workflow output #{i}"));
                }
                if as_source {
                    return Err(TemplateError::WrongDirection {
                        link: format!("workflow output #{i} used as source"),
                    });
                }
            }
            PortRef::ProcessorInput { processor, port } => {
                let Some(p) = self.processors.get(processor) else {
                    return dangling(format!("processor #{processor}"));
                };
                if port >= p.inputs.len() {
                    return dangling(format!("{}.in#{port}", p.name));
                }
                if as_source {
                    return Err(TemplateError::WrongDirection {
                        link: format!("{}.in#{port} used as source", p.name),
                    });
                }
            }
            PortRef::ProcessorOutput { processor, port } => {
                let Some(p) = self.processors.get(processor) else {
                    return dangling(format!("processor #{processor}"));
                };
                if port >= p.outputs.len() {
                    return dangling(format!("{}.out#{port}", p.name));
                }
                if !as_source {
                    return Err(TemplateError::WrongDirection {
                        link: format!("{}.out#{port} used as sink", p.name),
                    });
                }
            }
        }
        Ok(())
    }

    /// Validate structure: endpoints resolve and point the right way,
    /// every processor input and workflow output is fed by exactly one
    /// link, the graph is acyclic, and nested references resolve.
    /// Recurses into nested templates.
    pub fn validate(&self) -> Result<(), TemplateError> {
        for link in &self.links {
            self.endpoint_valid(&link.source, true)?;
            self.endpoint_valid(&link.sink, false)?;
        }
        for (pi, p) in self.processors.iter().enumerate() {
            for (port_idx, port) in p.inputs.iter().enumerate() {
                let count = self
                    .links
                    .iter()
                    .filter(|l| {
                        l.sink
                            == PortRef::ProcessorInput {
                                processor: pi,
                                port: port_idx,
                            }
                    })
                    .count();
                if count != 1 {
                    return Err(TemplateError::BadFanIn {
                        processor: p.name.clone(),
                        port: port.name.clone(),
                        count,
                    });
                }
            }
            if let Some(n) = p.sub_workflow {
                if n >= self.nested.len() {
                    return Err(TemplateError::MissingNested {
                        processor: p.name.clone(),
                    });
                }
            }
        }
        for (oi, out) in self.outputs.iter().enumerate() {
            let count = self
                .links
                .iter()
                .filter(|l| l.sink == PortRef::WorkflowOutput(oi))
                .count();
            if count != 1 {
                return Err(TemplateError::UnboundOutput {
                    output: out.name.clone(),
                    count,
                });
            }
        }
        self.topological_order().ok_or(TemplateError::Cycle)?;
        for nested in &self.nested {
            nested.validate()?;
        }
        Ok(())
    }

    /// Processor dependency edges `(upstream, downstream)` implied by links.
    pub fn processor_edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for link in &self.links {
            if let (
                PortRef::ProcessorOutput { processor: a, .. },
                PortRef::ProcessorInput { processor: b, .. },
            ) = (link.source, link.sink)
            {
                if !edges.contains(&(a, b)) {
                    edges.push((a, b));
                }
            }
        }
        edges
    }

    /// Kahn topological order of processors; `None` when cyclic.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.processors.len();
        let mut indeg = vec![0usize; n];
        let edges = self.processor_edges();
        for &(_, b) in &edges {
            indeg[b] += 1;
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &(a, b) in &edges {
                if a == i {
                    indeg[b] -= 1;
                    if indeg[b] == 0 {
                        queue.push_back(b);
                    }
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Downstream transitive closure of a processor (everything whose
    /// input depends, directly or not, on its outputs).
    pub fn downstream_of(&self, processor: usize) -> Vec<usize> {
        let edges = self.processor_edges();
        let mut out = Vec::new();
        let mut stack = vec![processor];
        while let Some(i) = stack.pop() {
            for &(a, b) in &edges {
                if a == i && !out.contains(&b) {
                    out.push(b);
                    stack.push(b);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// in0 → p0 → p1 → out0, with p0 also feeding p2 (dead end).
    fn small() -> WorkflowTemplate {
        let mut t = WorkflowTemplate::new("t", "Test", "Testing");
        t.inputs.push(Port::new("in0"));
        t.outputs.push(Port::new("out0"));
        let mut p0 = Processor::new("p0");
        p0.inputs.push(Port::new("x"));
        p0.outputs.push(Port::new("y"));
        let mut p1 = Processor::new("p1");
        p1.inputs.push(Port::new("x"));
        p1.outputs.push(Port::new("y"));
        let mut p2 = Processor::new("p2");
        p2.inputs.push(Port::new("x"));
        p2.outputs.push(Port::new("y"));
        t.processors = vec![p0, p1, p2];
        t.links = vec![
            DataLink {
                source: PortRef::WorkflowInput(0),
                sink: PortRef::ProcessorInput {
                    processor: 0,
                    port: 0,
                },
            },
            DataLink {
                source: PortRef::ProcessorOutput {
                    processor: 0,
                    port: 0,
                },
                sink: PortRef::ProcessorInput {
                    processor: 1,
                    port: 0,
                },
            },
            DataLink {
                source: PortRef::ProcessorOutput {
                    processor: 0,
                    port: 0,
                },
                sink: PortRef::ProcessorInput {
                    processor: 2,
                    port: 0,
                },
            },
            DataLink {
                source: PortRef::ProcessorOutput {
                    processor: 1,
                    port: 0,
                },
                sink: PortRef::WorkflowOutput(0),
            },
        ];
        t
    }

    #[test]
    fn valid_template_validates() {
        assert_eq!(small().validate(), Ok(()));
    }

    #[test]
    fn topological_order_respects_edges() {
        let t = small();
        let order = t.topological_order().unwrap();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn downstream_closure() {
        let t = small();
        assert_eq!(t.downstream_of(0), vec![1, 2]);
        assert!(t.downstream_of(1).is_empty());
    }

    #[test]
    fn dangling_endpoint_rejected() {
        let mut t = small();
        t.links.push(DataLink {
            source: PortRef::ProcessorOutput {
                processor: 9,
                port: 0,
            },
            sink: PortRef::WorkflowOutput(0),
        });
        assert!(matches!(
            t.validate(),
            Err(TemplateError::DanglingEndpoint { .. })
        ));
    }

    #[test]
    fn wrong_direction_rejected() {
        let mut t = small();
        t.links.push(DataLink {
            source: PortRef::WorkflowOutput(0),
            sink: PortRef::ProcessorInput {
                processor: 0,
                port: 0,
            },
        });
        assert!(matches!(
            t.validate(),
            Err(TemplateError::WrongDirection { .. })
        ));
    }

    #[test]
    fn unfed_input_rejected() {
        let mut t = small();
        t.links.remove(0); // p0.x loses its feed
        assert!(matches!(
            t.validate(),
            Err(TemplateError::BadFanIn { count: 0, .. })
        ));
    }

    #[test]
    fn double_fed_output_rejected() {
        let mut t = small();
        t.links.push(DataLink {
            source: PortRef::ProcessorOutput {
                processor: 2,
                port: 0,
            },
            sink: PortRef::WorkflowOutput(0),
        });
        assert!(matches!(
            t.validate(),
            Err(TemplateError::UnboundOutput { count: 2, .. })
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut t = small();
        // p1 output → p0 input would double-feed p0.x; use a fresh port.
        t.processors[0].inputs.push(Port::new("x2"));
        t.links.push(DataLink {
            source: PortRef::ProcessorOutput {
                processor: 1,
                port: 0,
            },
            sink: PortRef::ProcessorInput {
                processor: 0,
                port: 1,
            },
        });
        assert_eq!(t.validate(), Err(TemplateError::Cycle));
        assert!(t.topological_order().is_none());
    }

    #[test]
    fn missing_nested_rejected() {
        let mut t = small();
        t.processors[0].sub_workflow = Some(0);
        assert!(matches!(
            t.validate(),
            Err(TemplateError::MissingNested { .. })
        ));
        t.nested.push(small());
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.total_processors(), 6);
    }
}
