//! The paper's 12 application domains (Figure 1) and their workflow
//! counts per system.
//!
//! The provided paper text does not carry Figure 1's exact bar heights,
//! so the per-domain counts below are a documented reconstruction with
//! the constraints the text does state: 12 domains, 120 workflows total,
//! workflows split across Taverna and Wings, Taverna dominating the
//! life-science domains and Wings the analytics-style domains (see
//! DESIGN.md §2). Changing a row here flows through corpus generation,
//! statistics and the Figure 1 bench automatically.

use crate::model::{Processor, WorkflowTemplate};

/// Which workflow system designed and executed a workflow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum System {
    /// Taverna (myGrid).
    Taverna,
    /// Wings (ISI).
    Wings,
}

impl System {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            System::Taverna => "Taverna",
            System::Wings => "Wings",
        }
    }
}

/// One application domain and how many workflows each system contributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DomainSpec {
    /// Domain name as shown on Figure 1's axis.
    pub name: &'static str,
    /// Number of Taverna workflows in the domain.
    pub taverna_workflows: usize,
    /// Number of Wings workflows in the domain.
    pub wings_workflows: usize,
    /// Step-name vocabulary used by the template generator.
    pub steps: &'static [&'static str],
    /// Input/data nouns used for port and artifact names.
    pub data: &'static [&'static str],
}

/// The 12 domains; Taverna contributes 68 workflows and Wings 52,
/// totalling the paper's 120.
pub const DOMAINS: &[DomainSpec] = &[
    DomainSpec {
        name: "Genomics",
        taverna_workflows: 18,
        wings_workflows: 0,
        steps: &[
            "fetch_sequences",
            "blast_search",
            "filter_hits",
            "align_clustalw",
            "build_phylogeny",
            "annotate_genes",
            "translate_orf",
            "merge_reports",
        ],
        data: &[
            "sequence_set",
            "blast_report",
            "alignment",
            "gene_list",
            "tree",
        ],
    },
    DomainSpec {
        name: "Proteomics",
        taverna_workflows: 14,
        wings_workflows: 0,
        steps: &[
            "load_spectra",
            "peak_detection",
            "db_search_mascot",
            "score_psms",
            "infer_proteins",
            "quantify_itraq",
            "export_results",
        ],
        data: &[
            "spectra",
            "peak_list",
            "psm_set",
            "protein_groups",
            "quant_table",
        ],
    },
    DomainSpec {
        name: "Astronomy",
        taverna_workflows: 10,
        wings_workflows: 0,
        steps: &[
            "query_vizier",
            "cone_search",
            "crossmatch_catalogs",
            "fit_sed",
            "compute_redshift",
            "plot_lightcurve",
            "stack_images",
        ],
        data: &["catalog", "source_list", "sed", "image_stack", "lightcurve"],
    },
    DomainSpec {
        name: "Biodiversity",
        taverna_workflows: 8,
        wings_workflows: 0,
        steps: &[
            "fetch_occurrences",
            "clean_names",
            "georeference",
            "model_niche",
            "project_climate",
            "map_richness",
        ],
        data: &[
            "occurrence_set",
            "taxon_list",
            "climate_layers",
            "niche_model",
        ],
    },
    DomainSpec {
        name: "Cheminformatics",
        taverna_workflows: 8,
        wings_workflows: 0,
        steps: &[
            "parse_smiles",
            "compute_descriptors",
            "dock_ligands",
            "score_poses",
            "cluster_compounds",
            "predict_admet",
        ],
        data: &[
            "compound_set",
            "descriptor_matrix",
            "pose_set",
            "cluster_map",
        ],
    },
    DomainSpec {
        name: "Heliophysics",
        taverna_workflows: 6,
        wings_workflows: 0,
        steps: &[
            "fetch_goes_data",
            "detect_flares",
            "track_cme",
            "correlate_events",
            "forecast_activity",
        ],
        data: &["flux_series", "event_list", "cme_track", "forecast"],
    },
    DomainSpec {
        name: "Text Mining",
        taverna_workflows: 4,
        wings_workflows: 12,
        steps: &[
            "tokenize_corpus",
            "pos_tagging",
            "extract_entities",
            "resolve_terms",
            "build_index",
            "topic_model",
            "summarize_documents",
        ],
        data: &[
            "corpus",
            "token_stream",
            "entity_set",
            "topic_matrix",
            "summary",
        ],
    },
    DomainSpec {
        name: "Machine Learning",
        taverna_workflows: 0,
        wings_workflows: 10,
        steps: &[
            "split_dataset",
            "normalize_features",
            "train_classifier",
            "tune_parameters",
            "evaluate_model",
            "plot_roc",
            "select_features",
        ],
        data: &["dataset", "feature_matrix", "model", "metrics", "roc_curve"],
    },
    DomainSpec {
        name: "Water Quality",
        taverna_workflows: 0,
        wings_workflows: 8,
        steps: &[
            "ingest_sensor_data",
            "remove_outliers",
            "interpolate_gaps",
            "compute_wqi",
            "detect_anomalies",
            "report_quality",
        ],
        data: &["sensor_series", "clean_series", "wqi_table", "anomaly_list"],
    },
    DomainSpec {
        name: "Image Analysis",
        taverna_workflows: 0,
        wings_workflows: 6,
        steps: &[
            "load_images",
            "denoise",
            "segment_regions",
            "extract_features",
            "classify_regions",
            "overlay_results",
        ],
        data: &["image_set", "mask_set", "feature_table", "classified_map"],
    },
    DomainSpec {
        name: "Social Network Analysis",
        taverna_workflows: 0,
        wings_workflows: 6,
        steps: &[
            "crawl_edges",
            "build_graph",
            "compute_centrality",
            "detect_communities",
            "rank_influencers",
            "visualize_network",
        ],
        data: &["edge_list", "graph", "centrality_scores", "community_map"],
    },
    DomainSpec {
        name: "Domain Independent",
        taverna_workflows: 0,
        wings_workflows: 10,
        steps: &[
            "fetch_input",
            "validate_schema",
            "transform_format",
            "sort_records",
            "deduplicate",
            "aggregate_stats",
            "publish_output",
        ],
        data: &[
            "records",
            "validated_records",
            "sorted_records",
            "statistics",
        ],
    },
];

/// Total workflows contributed by a system across all domains.
pub fn system_total(system: System) -> usize {
    DOMAINS
        .iter()
        .map(|d| match system {
            System::Taverna => d.taverna_workflows,
            System::Wings => d.wings_workflows,
        })
        .sum()
}

/// Total workflows in the corpus (the paper's 120).
pub fn total_workflows() -> usize {
    system_total(System::Taverna) + system_total(System::Wings)
}

/// Look up a domain by name.
pub fn domain_by_name(name: &str) -> Option<&'static DomainSpec> {
    DOMAINS.iter().find(|d| d.name == name)
}

/// A tiny hand-built example template for documentation and tests: a
/// three-step genomics pipeline.
pub fn example_template() -> WorkflowTemplate {
    use crate::model::{DataLink, Port, PortRef};
    let mut t = WorkflowTemplate::new("example_blast", "BLAST annotation", "Genomics");
    t.inputs.push(Port::new("sequence_set"));
    t.outputs.push(Port::new("gene_list"));
    for (i, name) in ["fetch_sequences", "blast_search", "annotate_genes"]
        .into_iter()
        .enumerate()
    {
        let mut p = Processor::new(name);
        p.inputs.push(Port::new("in"));
        p.outputs.push(Port::new("out"));
        p.service = Some(format!("http://services.example.org/{name}"));
        p.mean_duration_ms = 1_000 * (i as u64 + 1);
        t.processors.push(p);
    }
    t.links = vec![
        DataLink {
            source: PortRef::WorkflowInput(0),
            sink: PortRef::ProcessorInput {
                processor: 0,
                port: 0,
            },
        },
        DataLink {
            source: PortRef::ProcessorOutput {
                processor: 0,
                port: 0,
            },
            sink: PortRef::ProcessorInput {
                processor: 1,
                port: 0,
            },
        },
        DataLink {
            source: PortRef::ProcessorOutput {
                processor: 1,
                port: 0,
            },
            sink: PortRef::ProcessorInput {
                processor: 2,
                port: 0,
            },
        },
        DataLink {
            source: PortRef::ProcessorOutput {
                processor: 2,
                port: 0,
            },
            sink: PortRef::WorkflowOutput(0),
        },
    ];
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_domains() {
        assert_eq!(DOMAINS.len(), 12);
    }

    #[test]
    fn totals_match_the_paper() {
        assert_eq!(total_workflows(), 120);
        assert_eq!(system_total(System::Taverna), 68);
        assert_eq!(system_total(System::Wings), 52);
    }

    #[test]
    fn every_domain_contributes_and_has_vocabulary() {
        for d in DOMAINS {
            assert!(
                d.taverna_workflows + d.wings_workflows > 0,
                "{} empty",
                d.name
            );
            assert!(d.steps.len() >= 4, "{} needs more steps", d.name);
            assert!(d.data.len() >= 3, "{} needs more data nouns", d.name);
        }
    }

    #[test]
    fn domain_names_unique() {
        let mut names: Vec<_> = DOMAINS.iter().map(|d| d.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn lookup_by_name() {
        assert!(domain_by_name("Genomics").is_some());
        assert!(domain_by_name("Astrology").is_none());
    }

    #[test]
    fn example_template_is_valid() {
        let t = example_template();
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.processors.len(), 3);
    }

    #[test]
    fn system_names() {
        assert_eq!(System::Taverna.name(), "Taverna");
        assert_eq!(System::Wings.name(), "Wings");
    }
}
