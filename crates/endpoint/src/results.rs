//! SPARQL 1.1 Query Results serialization: the standard JSON format and
//! a tab-separated text format for command-line use.
//!
//! Both formats have an incremental writer ([`JsonRowsWriter`],
//! [`TsvRowsWriter`]) fed one row at a time from a streaming
//! [`provbench_query::Rows`] iterator; the batch `solutions_to_*`
//! functions are thin drains over them, so streamed and materialized
//! serializations are byte-identical by construction.

use provbench_query::{Bindings, Solutions};
use provbench_rdf::Term;

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn term_to_json(term: &Term, out: &mut String) {
    out.push('{');
    match term {
        Term::Iri(i) => {
            out.push_str("\"type\":\"uri\",\"value\":\"");
            json_escape(i.as_str(), out);
            out.push('"');
        }
        Term::Blank(b) => {
            out.push_str("\"type\":\"bnode\",\"value\":\"");
            json_escape(b.label(), out);
            out.push('"');
        }
        Term::Literal(l) => {
            out.push_str("\"type\":\"literal\",\"value\":\"");
            json_escape(l.lexical(), out);
            out.push('"');
            if let Some(lang) = l.language() {
                out.push_str(",\"xml:lang\":\"");
                json_escape(lang, out);
                out.push('"');
            } else if !l.is_simple() {
                out.push_str(",\"datatype\":\"");
                json_escape(l.datatype().as_str(), out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Incremental `application/sparql-results+json` serializer: the
/// header is written at construction, each [`push`](Self::push) appends
/// one binding row, and [`finish`](Self::finish) closes the document.
pub struct JsonRowsWriter {
    out: String,
    variables: Vec<String>,
    rows: usize,
}

impl JsonRowsWriter {
    /// Start a result document projecting `variables`.
    pub fn new(variables: &[String]) -> Self {
        let mut out = String::from("{\"head\":{\"vars\":[");
        for (i, v) in variables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(v, &mut out);
            out.push('"');
        }
        out.push_str("]},\"results\":{\"bindings\":[");
        JsonRowsWriter {
            out,
            variables: variables.to_vec(),
            rows: 0,
        }
    }

    /// Append one solution row.
    pub fn push(&mut self, row: &Bindings) {
        if self.rows > 0 {
            self.out.push(',');
        }
        self.rows += 1;
        self.out.push('{');
        let mut first = true;
        for v in &self.variables {
            if let Some(term) = row.get(v) {
                if !first {
                    self.out.push(',');
                }
                first = false;
                self.out.push('"');
                json_escape(v, &mut self.out);
                self.out.push_str("\":");
                term_to_json(term, &mut self.out);
            }
        }
        self.out.push('}');
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if no row has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Close the document and return the serialized bytes.
    pub fn finish(mut self) -> String {
        self.out.push_str("]}}");
        self.out
    }
}

/// Incremental tab-separated serializer: header line at construction,
/// one line per [`push`](Self::push).
pub struct TsvRowsWriter {
    out: String,
    variables: Vec<String>,
    rows: usize,
}

impl TsvRowsWriter {
    /// Start a table with a header line naming `variables`.
    pub fn new(variables: &[String]) -> Self {
        let mut out = variables.join("\t");
        out.push('\n');
        TsvRowsWriter {
            out,
            variables: variables.to_vec(),
            rows: 0,
        }
    }

    /// Append one solution row (unbound variables serialize empty).
    pub fn push(&mut self, row: &Bindings) {
        self.rows += 1;
        let cells: Vec<String> = self
            .variables
            .iter()
            .map(|v| row.get(v).map_or(String::new(), |t| t.to_string()))
            .collect();
        self.out.push_str(&cells.join("\t"));
        self.out.push('\n');
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True if no row has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Return the serialized table.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Serialize solutions as `application/sparql-results+json`: a drain of
/// [`JsonRowsWriter`], so it matches streamed serialization byte for
/// byte.
pub fn solutions_to_json(solutions: &Solutions) -> String {
    let mut w = JsonRowsWriter::new(&solutions.variables);
    for row in &solutions.rows {
        w.push(row);
    }
    w.finish()
}

/// Serialize solutions as a tab-separated table (header + rows): a
/// drain of [`TsvRowsWriter`].
pub fn solutions_to_tsv(solutions: &Solutions) -> String {
    let mut w = TsvRowsWriter::new(&solutions.variables);
    for row in &solutions.rows {
        w.push(row);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_query::QueryEngine;
    use provbench_rdf::parse_turtle;

    fn solutions() -> Solutions {
        let (g, _) = parse_turtle(
            r#"@prefix e: <http://e/> .
               e:s e:p "va\"l" ; e:q "fr"@fr ; e:r 42 ."#,
        )
        .unwrap();
        QueryEngine::new(&g)
            .prepare("PREFIX e: <http://e/> SELECT ?p ?o WHERE { ?s ?p ?o } ORDER BY ?p")
            .unwrap()
            .select()
            .unwrap()
    }

    #[test]
    fn json_has_head_and_bindings() {
        let json = solutions_to_json(&solutions());
        assert!(json.starts_with("{\"head\":{\"vars\":[\"p\",\"o\"]}"));
        assert!(json.contains("\"type\":\"uri\""));
        assert!(json.contains("\"type\":\"literal\""));
        assert!(json.contains("\\\"")); // escaped quote in va"l
        assert!(json.contains("\"xml:lang\":\"fr\""));
        assert!(json.contains("XMLSchema#integer"));
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = solutions_to_json(&solutions());
        // Rough structural check without a JSON parser: balanced braces
        // and brackets outside strings.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn tsv_rows_match() {
        let s = solutions();
        let tsv = solutions_to_tsv(&s);
        assert_eq!(tsv.lines().count(), 1 + s.len());
        assert!(tsv.starts_with("p\to\n"));
    }

    #[test]
    fn incremental_writers_match_batch() {
        let s = solutions();
        let mut jw = JsonRowsWriter::new(&s.variables);
        let mut tw = TsvRowsWriter::new(&s.variables);
        assert!(jw.is_empty() && tw.is_empty());
        for row in &s.rows {
            jw.push(row);
            tw.push(row);
        }
        assert_eq!(jw.len(), s.len());
        assert_eq!(tw.len(), s.len());
        assert_eq!(jw.finish(), solutions_to_json(&s));
        assert_eq!(tw.finish(), solutions_to_tsv(&s));
    }

    #[test]
    fn empty_solutions() {
        let s = Solutions {
            variables: vec!["x".into()],
            rows: vec![],
        };
        assert_eq!(
            solutions_to_json(&s),
            "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":[]}}"
        );
        assert_eq!(solutions_to_tsv(&s), "x\n");
    }
}
