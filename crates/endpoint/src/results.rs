//! SPARQL 1.1 Query Results serialization: the standard JSON format and
//! a tab-separated text format for command-line use.

use provbench_query::Solutions;
use provbench_rdf::Term;

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn term_to_json(term: &Term, out: &mut String) {
    out.push('{');
    match term {
        Term::Iri(i) => {
            out.push_str("\"type\":\"uri\",\"value\":\"");
            json_escape(i.as_str(), out);
            out.push('"');
        }
        Term::Blank(b) => {
            out.push_str("\"type\":\"bnode\",\"value\":\"");
            json_escape(b.label(), out);
            out.push('"');
        }
        Term::Literal(l) => {
            out.push_str("\"type\":\"literal\",\"value\":\"");
            json_escape(l.lexical(), out);
            out.push('"');
            if let Some(lang) = l.language() {
                out.push_str(",\"xml:lang\":\"");
                json_escape(lang, out);
                out.push('"');
            } else if !l.is_simple() {
                out.push_str(",\"datatype\":\"");
                json_escape(l.datatype().as_str(), out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Serialize solutions as `application/sparql-results+json`.
pub fn solutions_to_json(solutions: &Solutions) -> String {
    let mut out = String::from("{\"head\":{\"vars\":[");
    for (i, v) in solutions.variables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape(v, &mut out);
        out.push('"');
    }
    out.push_str("]},\"results\":{\"bindings\":[");
    for (ri, row) in solutions.rows.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        out.push('{');
        let mut first = true;
        for v in &solutions.variables {
            if let Some(term) = row.get(v) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                json_escape(v, &mut out);
                out.push_str("\":");
                term_to_json(term, &mut out);
            }
        }
        out.push('}');
    }
    out.push_str("]}}");
    out
}

/// Serialize solutions as a tab-separated table (header + rows).
pub fn solutions_to_tsv(solutions: &Solutions) -> String {
    let mut out = solutions.variables.join("\t");
    out.push('\n');
    for row in &solutions.rows {
        let cells: Vec<String> = solutions
            .variables
            .iter()
            .map(|v| row.get(v).map_or(String::new(), |t| t.to_string()))
            .collect();
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_query::QueryEngine;
    use provbench_rdf::parse_turtle;

    fn solutions() -> Solutions {
        let (g, _) = parse_turtle(
            r#"@prefix e: <http://e/> .
               e:s e:p "va\"l" ; e:q "fr"@fr ; e:r 42 ."#,
        )
        .unwrap();
        QueryEngine::new(&g)
            .prepare("PREFIX e: <http://e/> SELECT ?p ?o WHERE { ?s ?p ?o } ORDER BY ?p")
            .unwrap()
            .select()
            .unwrap()
    }

    #[test]
    fn json_has_head_and_bindings() {
        let json = solutions_to_json(&solutions());
        assert!(json.starts_with("{\"head\":{\"vars\":[\"p\",\"o\"]}"));
        assert!(json.contains("\"type\":\"uri\""));
        assert!(json.contains("\"type\":\"literal\""));
        assert!(json.contains("\\\"")); // escaped quote in va"l
        assert!(json.contains("\"xml:lang\":\"fr\""));
        assert!(json.contains("XMLSchema#integer"));
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = solutions_to_json(&solutions());
        // Rough structural check without a JSON parser: balanced braces
        // and brackets outside strings.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn tsv_rows_match() {
        let s = solutions();
        let tsv = solutions_to_tsv(&s);
        assert_eq!(tsv.lines().count(), 1 + s.len());
        assert!(tsv.starts_with("p\to\n"));
    }

    #[test]
    fn empty_solutions() {
        let s = Solutions {
            variables: vec!["x".into()],
            rows: vec![],
        };
        assert_eq!(
            solutions_to_json(&s),
            "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":[]}}"
        );
        assert_eq!(solutions_to_tsv(&s), "x\n");
    }
}
