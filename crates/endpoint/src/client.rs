//! A small retrying HTTP client for a served endpoint.
//!
//! The transport mirror of the server's failure model: connection
//! errors and `503 Service Unavailable` are transient, so an
//! *idempotent* request ([`Client::get`]) retries them with jittered
//! exponential backoff, honoring the server's `Retry-After` hint. A
//! non-idempotent request ([`Client::post`]) is sent exactly once —
//! retrying a write the server may already have processed is how
//! duplicates are born. `provbench query --endpoint URL` and the CI
//! serve-smoke job both go through this client.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// Response headers the client will buffer before giving up.
const MAX_RESPONSE_HEADERS: usize = 256;

/// Retry and timeout knobs for a [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Total attempts for an idempotent request (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep — also caps an honored
    /// `Retry-After`, so a hostile or confused server cannot park the
    /// client for minutes.
    pub max_backoff: Duration,
    /// Per-attempt connect/read/write timeout.
    pub timeout: Duration,
    /// Seed for the backoff jitter stream (deterministic in tests).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_attempts: 4,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
            timeout: Duration::from_secs(10),
            seed: 42,
        }
    }
}

/// A parsed HTTP response from the endpoint.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A request that failed after exhausting its attempts.
#[derive(Debug)]
pub struct ClientError {
    /// Attempts made before giving up.
    pub attempts: u32,
    /// The last transport error observed.
    pub message: String,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "request failed after {} attempt{}: {}",
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.message
        )
    }
}

impl std::error::Error for ClientError {}

/// A client bound to one endpoint base URL (`http://host:port`).
#[derive(Debug)]
pub struct Client {
    authority: String,
    config: ClientConfig,
    /// xorshift64* state for backoff jitter.
    rng: Mutex<u64>,
}

impl Client {
    /// A client with default [`ClientConfig`]. The URL must be plain
    /// `http://host:port` (this is a loopback/CI tool, not a browser).
    pub fn new(base_url: &str) -> Result<Self, String> {
        Client::with_config(base_url, ClientConfig::default())
    }

    /// A client with explicit retry/timeout knobs.
    pub fn with_config(base_url: &str, config: ClientConfig) -> Result<Self, String> {
        let rest = base_url
            .strip_prefix("http://")
            .ok_or_else(|| format!("endpoint URL {base_url:?} must start with http://"))?;
        let authority = rest.split('/').next().unwrap_or("");
        if authority.is_empty() {
            return Err(format!("endpoint URL {base_url:?} has no host"));
        }
        let authority = if authority.contains(':') {
            authority.to_owned()
        } else {
            format!("{authority}:80")
        };
        let rng = Mutex::new(config.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        Ok(Client {
            authority,
            config,
            rng,
        })
    }

    /// GET a path (with query string), retrying transient failures.
    ///
    /// Retried: connection errors classified as transient (refused,
    /// reset, broken pipe, timeouts, unexpected EOF) and `503`
    /// responses, whose `Retry-After` is honored as a floor on the
    /// backoff (capped by `max_backoff`). Anything else — including a
    /// `503` on the final attempt — is returned to the caller as-is:
    /// GET is idempotent, so a retry can never double-apply work.
    pub fn get(&self, path_and_query: &str) -> Result<ClientResponse, ClientError> {
        let max = self.config.max_attempts.max(1);
        let mut last_error = String::new();
        for attempt in 1..=max {
            match self.attempt("GET", path_and_query, None) {
                Ok(response) if response.status == 503 && attempt < max => {
                    let retry_after = response
                        .header("retry-after")
                        .and_then(|v| v.trim().parse::<u64>().ok())
                        .map(Duration::from_secs);
                    last_error = "server answered 503".into();
                    std::thread::sleep(self.backoff(attempt, retry_after));
                }
                Ok(response) => return Ok(response),
                Err(e) if attempt < max && transient(&e) => {
                    last_error = e.to_string();
                    std::thread::sleep(self.backoff(attempt, None));
                }
                Err(e) => {
                    return Err(ClientError {
                        attempts: attempt,
                        message: e.to_string(),
                    })
                }
            }
        }
        Err(ClientError {
            attempts: max,
            message: last_error,
        })
    }

    /// POST a body to a path — exactly one attempt, never retried: the
    /// server may have processed a request whose response we lost, and
    /// POST is not idempotent.
    pub fn post(
        &self,
        path: &str,
        content_type: &str,
        body: &str,
    ) -> Result<ClientResponse, ClientError> {
        self.attempt("POST", path, Some((content_type, body)))
            .map_err(|e| ClientError {
                attempts: 1,
                message: e.to_string(),
            })
    }

    /// One wire-level request/response exchange.
    fn attempt(
        &self,
        method: &str,
        target: &str,
        body: Option<(&str, &str)>,
    ) -> io::Result<ClientResponse> {
        let addr = self.authority.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                "endpoint address resolved to nothing",
            )
        })?;
        let mut stream = TcpStream::connect_timeout(&addr, self.config.timeout)?;
        stream.set_read_timeout(Some(self.config.timeout))?;
        stream.set_write_timeout(Some(self.config.timeout))?;
        match body {
            Some((content_type, body)) => write!(
                stream,
                "{method} {target} HTTP/1.1\r\nHost: {}\r\nContent-Type: {content_type}\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                self.authority,
                body.len(),
            )?,
            None => write!(
                stream,
                "{method} {target} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
                self.authority,
            )?,
        }
        stream.flush()?;
        parse_response(stream)
    }

    /// Jittered exponential backoff before the next attempt: the
    /// doubling series scaled by a random factor in [0.5, 1.0), floored
    /// by the server's `Retry-After` when given, capped by
    /// `max_backoff`.
    fn backoff(&self, attempt: u32, retry_after: Option<Duration>) -> Duration {
        let exp = self
            .config
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16));
        let jittered = exp.mul_f64(0.5 + self.rand01() * 0.5);
        let floored = match retry_after {
            Some(hint) => jittered.max(hint),
            None => jittered,
        };
        floored.min(self.config.max_backoff)
    }

    /// One xorshift64* draw mapped to [0, 1).
    fn rand01(&self) -> f64 {
        let mut s = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        let draw = s.wrapping_mul(0x2545F4914F6CDD1D);
        (draw >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Whether a transport error is worth retrying (for an idempotent
/// request). Connection-level failures are; protocol-level ones
/// (`InvalidData`: the server spoke, just not HTTP) are not.
fn transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::Interrupted
    )
}

fn bad_response(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Parse one HTTP/1.x response. The endpoint always answers
/// `Connection: close`, so "no Content-Length" means read to EOF.
fn parse_response(stream: TcpStream) -> io::Result<ClientResponse> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a status line",
        ));
    }
    let status = line
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| line.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| bad_response(format!("malformed status line {line:?}")))?;

    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside the response headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if headers.len() >= MAX_RESPONSE_HEADERS {
            return Err(bad_response("too many response headers"));
        }
        if let Some((name, value)) = header.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .map(|(_, value)| {
            value
                .parse::<usize>()
                .map_err(|_| bad_response(format!("invalid Content-Length {value:?}")))
        })
        .transpose()?;
    let body = match content_length {
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("response truncated before its {len}-byte body finished"),
                )
            })?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader.read_to_end(&mut body)?;
            body
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_http_urls() {
        assert!(Client::new("https://host:1").is_err());
        assert!(Client::new("http://").is_err());
        let client = Client::new("http://127.0.0.1:3030/sparql").unwrap();
        assert_eq!(client.authority, "127.0.0.1:3030");
        let client = Client::new("http://localhost").unwrap();
        assert_eq!(client.authority, "localhost:80");
    }

    #[test]
    fn backoff_grows_jitters_and_caps() {
        let client = Client::with_config(
            "http://127.0.0.1:1",
            ClientConfig {
                base_backoff: Duration::from_millis(100),
                max_backoff: Duration::from_millis(450),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let first = client.backoff(1, None);
        assert!(first >= Duration::from_millis(50) && first < Duration::from_millis(100));
        let second = client.backoff(2, None);
        assert!(second >= Duration::from_millis(100) && second < Duration::from_millis(200));
        // The exponent keeps growing but the cap holds…
        assert_eq!(client.backoff(10, None), Duration::from_millis(450));
        // …including over a large Retry-After hint.
        assert_eq!(
            client.backoff(1, Some(Duration::from_secs(3600))),
            Duration::from_millis(450)
        );
        // A modest hint floors the jittered value.
        assert!(client.backoff(1, Some(Duration::from_millis(200))) >= Duration::from_millis(200));
    }

    #[test]
    fn same_seed_same_jitter() {
        let a = Client::new("http://127.0.0.1:1").unwrap();
        let b = Client::new("http://127.0.0.1:1").unwrap();
        for attempt in 1..5 {
            assert_eq!(a.backoff(attempt, None), b.backoff(attempt, None));
        }
    }

    #[test]
    fn connection_refused_is_transient_and_reported() {
        // Nothing listens on a freshly bound-then-dropped port; the
        // client retries (cheap backoff) and reports the attempt count.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let client = Client::with_config(
            &format!("http://{addr}"),
            ClientConfig {
                max_attempts: 2,
                base_backoff: Duration::from_millis(1),
                timeout: Duration::from_millis(500),
                ..ClientConfig::default()
            },
        )
        .unwrap();
        let err = client.get("/healthz").unwrap_err();
        assert_eq!(err.attempts, 2, "{err}");
    }
}
