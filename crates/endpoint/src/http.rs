//! A deliberately small HTTP/1.1 request parser and response writer —
//! just enough for the SPARQL protocol endpoints, with no external
//! dependencies.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Read, Write};

/// A parsed HTTP request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string, e.g. `/sparql`.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Lower-cased header map.
    pub headers: BTreeMap<String, String>,
    /// Request body (POST).
    pub body: String,
}

impl Request {
    /// The first query parameter with this name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.get(name).map(String::as_str)
    }

    /// Whether the client asked for the given content type.
    pub fn accepts(&self, content_type: &str) -> bool {
        self.headers
            .get("accept")
            .is_some_and(|a| a.contains(content_type))
    }
}

/// Percent-decode a URL component (also turning `+` into a space).
///
/// Decoding walks raw bytes and never slices the input `&str`: a `%`
/// followed by a multibyte UTF-8 character (`%é`) or a truncated or
/// malformed escape (`%`, `%4`, `%zz`) passes through verbatim instead
/// of panicking on a non-char-boundary slice. Escapes that assemble
/// into invalid UTF-8 are replaced lossily at the end.
pub fn url_decode(s: &str) -> String {
    fn hex_val(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hi = bytes.get(i + 1).copied().and_then(hex_val);
                let lo = bytes.get(i + 2).copied().and_then(hex_val);
                match (hi, lo) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi << 4) | lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encode a URL component.
pub fn url_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn parse_query_string(qs: &str) -> BTreeMap<String, String> {
    qs.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (url_decode(k), url_decode(v)),
            None => (url_decode(kv), String::new()),
        })
        .collect()
}

/// Parser bounds. A SPARQL endpoint only ever sees short requests, so
/// anything past these limits is rejected as malformed rather than
/// buffered: a hostile or broken client must not make the worker
/// allocate unbounded memory or hang on a body that never arrives.
/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 16 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Longest accepted single header line.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Largest accepted request body (a query posted as a form).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

fn bad_request(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// `read_line` with a hard cap: a line longer than `max` is an error,
/// not a growing buffer.
fn read_bounded_line(reader: &mut impl BufRead, max: usize, what: &str) -> io::Result<String> {
    let mut line = String::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(line); // EOF
        }
        let take = available.len().min(max + 1 - line.len());
        let chunk = &available[..take];
        let newline = chunk.iter().position(|&b| b == b'\n');
        let used = newline.map_or(take, |i| i + 1);
        line.push_str(&String::from_utf8_lossy(&chunk[..used]));
        reader.consume(used);
        if newline.is_some() {
            return Ok(line);
        }
        if line.len() > max {
            return Err(bad_request(format!("{what} exceeds {max} bytes")));
        }
    }
}

/// Read and parse one request from a stream.
///
/// Malformed input — a missing or non-numeric `Content-Length`, a length
/// beyond [`MAX_BODY`], too many or too long headers, or a body shorter
/// than declared — yields an `InvalidData` error the server answers with
/// `400 Bad Request`. The parser never allocates more than the declared
/// (validated) body size.
pub fn parse_request(stream: &mut impl Read) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let line = read_bounded_line(&mut reader, MAX_REQUEST_LINE, "request line")?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad_request("empty request line"))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| bad_request("missing request target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), parse_query_string(q)),
        None => (target.to_owned(), BTreeMap::new()),
    };

    let mut headers = BTreeMap::new();
    loop {
        let header = read_bounded_line(&mut reader, MAX_HEADER_LINE, "header line")?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad_request(format!("more than {MAX_HEADERS} headers")));
        }
        if let Some((k, v)) = header.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_owned());
        }
    }

    let mut body = String::new();
    let declares_body = matches!(method.as_str(), "POST" | "PUT" | "PATCH");
    match headers.get("content-length") {
        Some(value) => {
            let len = value
                .parse::<usize>()
                .map_err(|_| bad_request(format!("invalid Content-Length {value:?}")))?;
            if len > MAX_BODY {
                return Err(bad_request(format!(
                    "Content-Length {len} exceeds the {MAX_BODY}-byte limit"
                )));
            }
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|_| bad_request(format!("body shorter than Content-Length {len}")))?;
            body = String::from_utf8_lossy(&buf).into_owned();
        }
        None if declares_body => {
            return Err(bad_request(format!("{method} without Content-Length")));
        }
        None => {}
    }

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// An HTTP response, built fluently:
///
/// ```
/// use provbench_endpoint::Response;
///
/// let r = Response::status(503)
///     .content_type("text/plain")
///     .header("Retry-After", "1")
///     .body("server busy");
/// assert_eq!(r.status, 503);
/// ```
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Content type.
    pub content_type: String,
    /// Extra headers, in insertion order.
    pub headers: Vec<(String, String)>,
    /// Body.
    pub body: String,
}

impl Response {
    /// Start building a response with the given status code, defaulting
    /// to an empty `text/plain` body.
    pub fn status(status: u16) -> Self {
        Response {
            status,
            content_type: "text/plain".to_owned(),
            headers: Vec::new(),
            body: String::new(),
        }
    }

    /// Set the content type.
    pub fn content_type(mut self, content_type: &str) -> Self {
        self.content_type = content_type.to_owned();
        self
    }

    /// Append a header (besides the automatic `Content-Type`,
    /// `Content-Length` and `Connection`).
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Set the body.
    pub fn body(mut self, body: impl Into<String>) -> Self {
        self.body = body.into();
        self
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            408 => "Request Timeout",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }

    /// Serialize the whole response — status line, headers, body — to
    /// one buffer. The server writes a response as a single buffer so a
    /// partial write surfaces as an error it can count, instead of a
    /// silently truncated response on the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        // Writing into a Vec cannot fail.
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}; charset=utf-8\r\nContent-Length: {}\r\n",
            self.status,
            self.status_text(),
            self.content_type,
            self.body.len(),
        );
        for (name, value) in &self.headers {
            let _ = write!(out, "{name}: {value}\r\n");
        }
        let _ = write!(out, "Connection: close\r\n\r\n{}", self.body);
        out
    }

    /// Write the response to a stream (one `write_all` of
    /// [`Response::to_bytes`]).
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        stream.write_all(&self.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_codec_roundtrip() {
        let original = "SELECT ?x WHERE { ?x a <http://e/Type> } # 100%";
        let encoded = url_encode(original);
        assert!(!encoded.contains(' '));
        assert_eq!(url_decode(&encoded), original);
        assert_eq!(url_decode("a+b%20c"), "a b c");
        assert_eq!(url_decode("%ZZ"), "%ZZ"); // invalid escapes pass through
    }

    #[test]
    fn url_decode_multibyte_escapes() {
        assert_eq!(url_decode("%C3%A9"), "é");
        assert_eq!(url_decode("%E2%9C%93"), "✓");
        assert_eq!(url_decode("SELECT%20%E2%9C%93"), "SELECT ✓");
        // Unescaped multibyte characters survive decoding around them.
        assert_eq!(url_decode("é%20✓"), "é ✓");
        assert_eq!(url_encode("é ✓"), "%C3%A9+%E2%9C%93");
    }

    #[test]
    fn url_decode_never_panics_on_hostile_input() {
        // `%` directly followed by a multibyte character used to slice
        // the `&str` at a non-char boundary and panic; every such shape
        // must now pass the `%` through and keep the character intact.
        for (input, want) in [
            ("%", "%"),
            ("%4", "%4"),
            ("%zz", "%zz"),
            ("%é", "%é"),
            ("%✓", "%✓"),
            ("%a✓", "%a✓"),
            ("a%é", "a%é"),
            ("%%41", "%A"),
            ("%C3%A9%", "é%"),
            ("%+4", "% 4"), // `+` is not a hex digit, even for from_str_radix
        ] {
            assert_eq!(url_decode(input), want, "input {input:?}");
        }
        // An escape assembling invalid UTF-8 is replaced, not a panic.
        assert_eq!(url_decode("%FF"), "\u{FFFD}");
    }

    #[test]
    fn query_string_roundtrips_plus_escapes_and_non_ascii() {
        // `+` is a space, `%2B` is a literal plus, and multibyte
        // percent-escapes must reach the consumer as valid UTF-8.
        let params = parse_query_string("query=SELECT%20%E2%9C%93&op=a%2Bb+c");
        assert_eq!(
            params.get("query").map(String::as_str),
            Some("SELECT ✓"),
            "{params:?}"
        );
        assert_eq!(params.get("op").map(String::as_str), Some("a+b c"));
        // Encode → decode is the identity for arbitrary text.
        for original in ["SELECT ✓", "a+b c", "100% é", "%", "%4"] {
            assert_eq!(url_decode(&url_encode(original)), original);
        }
    }

    #[test]
    fn request_with_hostile_escapes_still_parses() {
        for q in ["%C3%A9", "%", "%4", "%zz", "%E2%9C", "a%E2"] {
            let raw = format!("GET /sparql?query={q} HTTP/1.1\r\nHost: x\r\n\r\n");
            let req = parse_request(&mut raw.as_bytes())
                .unwrap_or_else(|e| panic!("query {q:?} rejected: {e}"));
            assert!(req.param("query").is_some(), "query {q:?} lost");
        }
    }

    #[test]
    fn parses_get_with_query() {
        let raw = "GET /sparql?query=SELECT+%3Fx&format=json HTTP/1.1\r\nHost: x\r\nAccept: application/sparql-results+json\r\n\r\n";
        let req = parse_request(&mut raw.as_bytes()).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/sparql");
        assert_eq!(req.param("query"), Some("SELECT ?x"));
        assert_eq!(req.param("format"), Some("json"));
        assert!(req.accepts("application/sparql-results+json"));
    }

    #[test]
    fn parses_post_with_body() {
        let body = "query=SELECT+%2A+WHERE+%7B+%3Fs+%3Fp+%3Fo+%7D";
        let raw = format!(
            "POST /sparql HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let req = parse_request(&mut raw.as_bytes()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, body);
    }

    #[test]
    fn post_without_content_length_is_rejected() {
        let raw = "POST /sparql HTTP/1.1\r\nHost: x\r\n\r\nquery=1";
        let err = parse_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("Content-Length"), "{err}");
    }

    #[test]
    fn malformed_content_length_is_rejected() {
        for bad in ["abc", "-1", "1e3", "99999999999999999999999999"] {
            let raw = format!("POST /sparql HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nx");
            let err = parse_request(&mut raw.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad}");
        }
    }

    #[test]
    fn oversized_content_length_is_rejected_without_allocating() {
        let raw = format!(
            "POST /sparql HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = parse_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn truncated_body_is_an_error_not_a_hang() {
        let raw = "POST /sparql HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort";
        let err = parse_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("shorter"), "{err}");
    }

    #[test]
    fn header_count_is_bounded() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS + 1 {
            raw.push_str(&format!("X-Pad-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        let err = parse_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("headers"), "{err}");
        // Exactly at the limit is fine.
        let mut ok = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS {
            ok.push_str(&format!("X-Pad-{i}: v\r\n"));
        }
        ok.push_str("\r\n");
        assert!(parse_request(&mut ok.as_bytes()).is_ok());
    }

    #[test]
    fn header_and_request_lines_are_bounded() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        let err = parse_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let raw = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "b".repeat(MAX_HEADER_LINE)
        );
        let err = parse_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn get_without_content_length_still_parses() {
        let raw = "GET /stats HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = parse_request(&mut raw.as_bytes()).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        Response::status(200).body("hi").write_to(&mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 2"));
        assert!(s.ends_with("hi"));
    }

    #[test]
    fn builder_headers_and_status_lines() {
        let mut out = Vec::new();
        Response::status(503)
            .content_type("text/plain")
            .header("Retry-After", "1")
            .body("busy")
            .write_to(&mut out)
            .unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{s}");
        assert!(s.contains("Retry-After: 1\r\n"));
        assert!(s.ends_with("busy"));

        let mut out = Vec::new();
        Response::status(408).write_to(&mut out).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .starts_with("HTTP/1.1 408 Request Timeout\r\n"));
    }
}
