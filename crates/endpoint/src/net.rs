//! The per-connection transport seam.
//!
//! The serving loop in `server.rs` is generic over a [`Conn`] — the
//! small surface of a byte stream the endpoint actually uses
//! (`Read + Write` plus socket timeouts). `TcpStream` is the production
//! implementation; [`BufConn`] drives the same code path from an
//! in-memory request in tests; and, behind the `fault-inject` feature,
//! [`FaultConn`] wraps any `Conn` and injects short reads, short
//! writes, mid-response resets and stalls at deterministic points —
//! the network-side sibling of `provbench_core`'s `FaultFs`.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// The byte-stream surface the server loop needs from a connection.
///
/// Timeouts take `&mut self` (unlike `TcpStream`'s `&self` setters) so
/// in-memory and fault-injecting implementations don't need interior
/// mutability.
pub trait Conn: Read + Write + Send {
    /// Bound every subsequent read. `None` = block forever.
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;
    /// Bound every subsequent write. `None` = block forever.
    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }

    fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }
}

/// An in-memory [`Conn`]: a scripted request on the read side, a
/// capture buffer on the write side. Lets tests (and the net-chaos
/// sweep) drive `Endpoint::serve_conn` without a socket.
#[derive(Debug, Default)]
pub struct BufConn {
    input: io::Cursor<Vec<u8>>,
    output: Vec<u8>,
}

impl BufConn {
    /// A connection that will replay `request` to the server and
    /// capture whatever the server writes back.
    pub fn request(request: impl Into<Vec<u8>>) -> Self {
        BufConn {
            input: io::Cursor::new(request.into()),
            output: Vec::new(),
        }
    }

    /// Everything the server wrote to this connection so far.
    pub fn output(&self) -> &[u8] {
        &self.output
    }
}

impl Read for BufConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.input.read(buf)
    }
}

impl Write for BufConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.output.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Conn for BufConn {
    fn set_read_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(())
    }

    fn set_write_timeout(&mut self, _timeout: Option<Duration>) -> io::Result<()> {
        Ok(())
    }
}

/// A reader enforcing a *total* deadline across every read of one
/// request — the slowloris defense. A per-read socket timeout alone
/// lets a client dribble one byte per `read_timeout` and hold a worker
/// forever; this shrinks the socket timeout to the time remaining
/// before each read, so header dribbling runs out of budget.
pub(crate) struct DeadlineReader<'a> {
    conn: &'a mut dyn Conn,
    deadline: Instant,
}

impl<'a> DeadlineReader<'a> {
    pub(crate) fn new(conn: &'a mut dyn Conn, deadline: Instant) -> Self {
        DeadlineReader { conn, deadline }
    }
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        // std rejects a zero timeout, and an expired deadline must not
        // grant one more full read anyway.
        if remaining.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request not received within the read-timeout budget",
            ));
        }
        self.conn.set_read_timeout(Some(remaining))?;
        match self.conn.read(buf) {
            // Unix sockets report a timed-out read as WouldBlock;
            // normalize so callers match one kind.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request not received within the read-timeout budget",
            )),
            other => other,
        }
    }
}

#[cfg(feature = "fault-inject")]
pub use fault::{FaultConn, NetFaultKind};

#[cfg(feature = "fault-inject")]
mod fault {
    use super::Conn;
    use std::io::{self, Read, Write};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    /// What a scheduled network fault does when it fires.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum NetFaultKind {
        /// The read returns at most one byte (success, but far short of
        /// the buffer) — the peer trickling data.
        ShortRead,
        /// The write accepts half the buffer, then the connection
        /// breaks — a response torn mid-flight.
        ShortWrite,
        /// The operation fails with `ConnectionReset` — the peer gone.
        Reset,
        /// The operation fails with `TimedOut` — the peer silent past
        /// the socket timeout.
        Stall,
    }

    /// When faults fire (mirrors `FaultFs`'s plans).
    #[derive(Debug)]
    enum FaultPlan {
        /// Exactly the `op`-th connection operation (0-based) faults.
        Nth { kind: NetFaultKind, op: usize },
        /// xorshift64*-scheduled faults: roughly one in `rate`
        /// operations faults, with the kind drawn from the same stream.
        Seeded { state: Mutex<u64>, rate: u64 },
    }

    /// A [`Conn`] wrapper injecting deterministic network faults.
    ///
    /// Every trait operation — `set_read_timeout`, `set_write_timeout`,
    /// `read`, `write` (`flush` is free) — counts as one op; the plan
    /// decides which ops fault. A timeout-setter fault surfaces as an
    /// `InvalidInput` error, modelling a failed `setsockopt`.
    #[derive(Debug)]
    pub struct FaultConn<C> {
        inner: C,
        plan: FaultPlan,
        ops: AtomicUsize,
        injected: AtomicUsize,
    }

    impl<C: Conn> FaultConn<C> {
        /// Fault exactly the `op`-th operation (0-based) with `kind`.
        pub fn fail_nth(inner: C, kind: NetFaultKind, op: usize) -> Self {
            FaultConn {
                inner,
                plan: FaultPlan::Nth { kind, op },
                ops: AtomicUsize::new(0),
                injected: AtomicUsize::new(0),
            }
        }

        /// Fault roughly one in `rate` operations, scheduled by an
        /// xorshift64* stream seeded with `seed` (same generator and
        /// seed hygiene as `FaultFs::seeded`).
        pub fn seeded(inner: C, seed: u64, rate: u64) -> Self {
            FaultConn {
                inner,
                plan: FaultPlan::Seeded {
                    state: Mutex::new(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1),
                    rate: rate.max(1),
                },
                ops: AtomicUsize::new(0),
                injected: AtomicUsize::new(0),
            }
        }

        /// Connection operations attempted so far.
        pub fn ops(&self) -> usize {
            self.ops.load(Ordering::SeqCst)
        }

        /// Faults actually injected so far.
        pub fn injected(&self) -> usize {
            self.injected.load(Ordering::SeqCst)
        }

        /// The wrapped connection (e.g. to inspect a `BufConn`'s
        /// captured output after a sweep).
        pub fn inner(&self) -> &C {
            &self.inner
        }

        /// Decide whether the current op faults, and with what kind.
        fn fault(&self) -> Option<NetFaultKind> {
            let op = self.ops.fetch_add(1, Ordering::SeqCst);
            let kind = match &self.plan {
                FaultPlan::Nth { kind, op: target } => (op == *target).then_some(*kind),
                FaultPlan::Seeded { state, rate } => {
                    let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
                    *s ^= *s << 13;
                    *s ^= *s >> 7;
                    *s ^= *s << 17;
                    let draw = s.wrapping_mul(0x2545F4914F6CDD1D);
                    (draw % *rate == 0).then_some(match (draw >> 33) % 4 {
                        0 => NetFaultKind::ShortRead,
                        1 => NetFaultKind::ShortWrite,
                        2 => NetFaultKind::Reset,
                        _ => NetFaultKind::Stall,
                    })
                }
            };
            if kind.is_some() {
                self.injected.fetch_add(1, Ordering::SeqCst);
            }
            kind
        }
    }

    fn reset(during: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("injected fault: connection reset during {during}"),
        )
    }

    fn stall(during: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::TimedOut,
            format!("injected fault: {during} stalled past its timeout"),
        )
    }

    impl<C: Conn> Read for FaultConn<C> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.fault() {
                // A short read is still a successful read — the server
                // must simply keep reading.
                Some(NetFaultKind::ShortRead) => {
                    let n = buf.len().min(1);
                    self.inner.read(&mut buf[..n])
                }
                Some(NetFaultKind::Stall) => Err(stall("read")),
                Some(NetFaultKind::ShortWrite) | Some(NetFaultKind::Reset) => Err(reset("read")),
                None => self.inner.read(buf),
            }
        }
    }

    impl<C: Conn> Write for FaultConn<C> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match self.fault() {
                // Half the buffer reaches the wire, then the pipe
                // breaks — the torn-response case partial-write
                // detection exists for.
                Some(NetFaultKind::ShortWrite) => {
                    let _ = self.inner.write(&buf[..buf.len() / 2]);
                    Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "injected fault: connection broke mid-write",
                    ))
                }
                Some(NetFaultKind::Stall) => Err(stall("write")),
                Some(NetFaultKind::ShortRead) | Some(NetFaultKind::Reset) => Err(reset("write")),
                None => self.inner.write(buf),
            }
        }

        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    impl<C: Conn> Conn for FaultConn<C> {
        fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
            match self.fault() {
                Some(_) => Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "injected fault: setsockopt failed",
                )),
                None => self.inner.set_read_timeout(timeout),
            }
        }

        fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
            match self.fault() {
                Some(_) => Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "injected fault: setsockopt failed",
                )),
                None => self.inner.set_write_timeout(timeout),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buf_conn_replays_input_and_captures_output() {
        let mut conn = BufConn::request("hello");
        let mut buf = [0u8; 16];
        let n = conn.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
        conn.write_all(b"world").unwrap();
        conn.flush().unwrap();
        assert_eq!(conn.output(), b"world");
        assert!(conn.set_read_timeout(Some(Duration::from_secs(1))).is_ok());
    }

    #[test]
    fn deadline_reader_times_out_instead_of_reading() {
        let mut conn = BufConn::request("payload");
        // A deadline already in the past: no read is granted.
        let past = Instant::now() - Duration::from_millis(1);
        let mut reader = DeadlineReader::new(&mut conn, past);
        let err = reader.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        // A live deadline reads normally.
        let future = Instant::now() + Duration::from_secs(5);
        let mut reader = DeadlineReader::new(&mut conn, future);
        let mut buf = [0u8; 4];
        assert_eq!(reader.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"payl");
    }
}
