//! # provbench-endpoint
//!
//! The paper's §6 future work, implemented: "providing access to the
//! corpus via a SPARQL endpoint and web interfaces".
//!
//! A dependency-free HTTP/1.1 server exposing a corpus graph:
//!
//! * `GET /` — a small HTML web interface with a query form;
//! * `GET /sparql?query=…` and `POST /sparql` — the SPARQL protocol
//!   endpoint, returning SPARQL 1.1 JSON results
//!   (`application/sparql-results+json`) or, on request, tab-separated
//!   text;
//! * `GET /stats` — corpus statistics as JSON;
//! * `GET /metrics` — Prometheus text exposition of the endpoint's
//!   metrics registry (see `docs/observability.md`).
//!
//! The serving loop is generic over the [`Conn`] transport (with a
//! fault-injecting wrapper behind the `fault-inject` feature), shuts
//! down gracefully on a [`ShutdownSignal`] (SIGTERM/Ctrl-C when
//! installed), and ships a small retrying [`Client`] for talking to a
//! served endpoint — see `docs/query.md`, "Failure model, shutdown,
//! and retries".
//!
//! ```no_run
//! use provbench_core::{Corpus, CorpusSpec};
//! use provbench_endpoint::Endpoint;
//!
//! let corpus = Corpus::generate(&CorpusSpec::default());
//! let endpoint = Endpoint::new(corpus.combined_graph());
//! endpoint.serve("127.0.0.1:3030").unwrap(); // blocks
//! ```

mod client;
mod http;
pub mod net;
pub mod results;
mod server;

pub use client::{Client, ClientConfig, ClientError, ClientResponse};
pub use http::{parse_request, url_decode, url_encode, Request, Response};
pub use net::{BufConn, Conn};
#[cfg(feature = "fault-inject")]
pub use net::{FaultConn, NetFaultKind};
pub use results::{solutions_to_json, solutions_to_tsv, JsonRowsWriter, TsvRowsWriter};
pub use server::{Endpoint, ServerConfig, ShutdownSignal};
