//! The endpoint itself: route dispatch, the plan cache, health/readiness
//! state, the metrics registry behind `GET /metrics`, and the bounded,
//! panic-isolated serving loop — generic over the [`Conn`] transport,
//! with graceful shutdown via [`ShutdownSignal`].

use crate::http::{parse_request, Request, Response};
use crate::net::{Conn, DeadlineReader};
use crate::results::{JsonRowsWriter, TsvRowsWriter};
use provbench_obs::{Counter, Gauge, Registry, LATENCY_BUCKETS};
use provbench_query::sparql::ast::Query;
use provbench_query::{parse_query, EvalOptions, QueryEngine, QueryError, QueryParseError};
use provbench_rdf::Graph;
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Counter of served requests (`method`, `route`, `status` labels).
const HTTP_REQUESTS_TOTAL: &str = "provbench_http_requests_total";
/// Histogram of request wall-clock time, by normalized route.
const HTTP_REQUEST_SECONDS: &str = "provbench_http_request_seconds";
/// Counter of connections, by final outcome (`result` label): exactly
/// one increment per connection the server touched, so a failure that
/// never produced a countable HTTP response is still accounted for.
const CONNECTIONS_TOTAL: &str = "provbench_connections_total";
/// Counter of socket-option (`setsockopt`) failures on accepted
/// connections. Such a connection is closed, not served untimed.
const SOCKET_ERRORS_TOTAL: &str = "provbench_socket_errors_total";
/// Histogram: how long the graceful-shutdown drain took (observed once
/// per [`Endpoint::serve_with_shutdown`] return).
const SHUTDOWN_DRAIN_SECONDS: &str = "provbench_shutdown_drain_seconds";
/// Counter of request-handler panics survived by the worker pool.
const PANICS_TOTAL: &str = "provbench_panics_total";
/// Gauge: files quarantined by the live graph's ingest run.
const INGEST_ERRORS: &str = "provbench_ingest_errors";
/// Gauge: error-severity findings in the published lint report.
const LINT_ERRORS: &str = "provbench_lint_errors";
/// Counter of plan-cache hits.
const PLAN_CACHE_HITS: &str = "provbench_plan_cache_hits_total";
/// Counter of plan-cache misses (including unparsable queries).
const PLAN_CACHE_MISSES: &str = "provbench_plan_cache_misses_total";
/// Gauge: parsed plans currently cached.
const PLAN_CACHE_ENTRIES: &str = "provbench_plan_cache_entries";

/// Configuration for a served endpoint, built fluently:
///
/// ```
/// use provbench_endpoint::ServerConfig;
/// use std::time::Duration;
///
/// let config = ServerConfig::new()
///     .workers(4)
///     .queue_depth(16)
///     .timeout(Duration::from_secs(5))
///     .build();
/// ```
///
/// `build` normalizes the knobs (worker and queue counts are clamped to
/// at least 1) and is idempotent; constructors accept a not-yet-built
/// config and normalize it themselves.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads handling requests. Connections beyond
    /// `workers + queue_depth` are answered `503` immediately instead of
    /// spawning unbounded threads.
    pub(crate) workers: usize,
    /// Accepted connections that may wait for a free worker.
    pub(crate) queue_depth: usize,
    /// Per-request evaluation deadline; queries running longer answer
    /// `408`. Clients may lower (never raise) it per request with a
    /// `timeout=<ms>` parameter.
    pub(crate) query_timeout: Duration,
    /// Per-request cap on intermediate rows — a deterministic cost
    /// bound that trips even when the clock barely advances.
    pub(crate) row_budget: Option<u64>,
    /// Worker threads for each request's query evaluation (`1` =
    /// serial, `0` = one per core capped at 8). Results are
    /// byte-identical regardless of the setting; see
    /// [`EvalOptions::with_jobs`].
    pub(crate) eval_jobs: usize,
    /// Parsed query plans cached by query text (LRU).
    pub(crate) plan_cache_size: usize,
    /// Total budget for receiving one request, enforced as a deadline
    /// across every read (not per read — a slowloris client dribbling
    /// one byte per timeout would otherwise hold a worker forever). A
    /// client that has not delivered a complete request within this
    /// budget is answered `408`.
    pub(crate) read_timeout: Duration,
    /// Per-write socket timeout. A client that stops reading its
    /// response stalls a worker for at most this long before the write
    /// fails and is counted.
    pub(crate) write_timeout: Duration,
    /// Seconds advertised in `Retry-After` on `503` responses. `None`
    /// (the default) derives it: the estimated queue-clear time
    /// (`queue_depth / workers`, clamped to 1..=30 s) normally, the
    /// drain deadline while shutting down.
    pub(crate) retry_after: Option<Duration>,
    /// How long a graceful shutdown waits for in-flight requests before
    /// giving up on stragglers and returning anyway.
    pub(crate) drain_deadline: Duration,
    /// Expose `GET /debug/panic`, a route that panics inside the handler.
    /// Exists so the worker-pool panic isolation can be exercised from a
    /// real TCP client in tests; never enabled in production.
    pub(crate) debug_panic_route: bool,
    /// Metrics registry the endpoint records into and serves on
    /// `GET /metrics`. `None` = the process-wide global registry.
    pub(crate) registry: Option<Arc<Registry>>,
    /// Where the served graph came from, surfaced in `/stats`.
    pub(crate) source: Option<String>,
}

impl ServerConfig {
    /// The default configuration: 8 workers, 32 queued connections, 10s
    /// query deadline, 50M-row budget, 64-plan cache.
    pub fn new() -> Self {
        ServerConfig {
            workers: 8,
            queue_depth: 32,
            query_timeout: Duration::from_secs(10),
            row_budget: Some(50_000_000),
            eval_jobs: 1,
            plan_cache_size: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            retry_after: None,
            drain_deadline: Duration::from_secs(5),
            debug_panic_route: false,
            registry: None,
            source: None,
        }
    }

    /// Worker threads handling requests.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Accepted connections that may wait for a free worker.
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Per-request evaluation deadline.
    pub fn timeout(mut self, t: Duration) -> Self {
        self.query_timeout = t;
        self
    }

    /// Per-request cap on intermediate rows (`None` = unbounded).
    pub fn row_budget(mut self, budget: Option<u64>) -> Self {
        self.row_budget = budget;
        self
    }

    /// Worker threads for each request's query evaluation (`1` =
    /// serial, `0` = one per core capped at 8). Keep the product of
    /// `workers` and `eval_jobs` near the core count to avoid
    /// oversubscription under load.
    pub fn eval_jobs(mut self, jobs: usize) -> Self {
        self.eval_jobs = jobs;
        self
    }

    /// Capacity of the LRU plan cache (0 disables caching).
    pub fn plan_cache(mut self, capacity: usize) -> Self {
        self.plan_cache_size = capacity;
        self
    }

    /// Total budget for receiving one request (the slowloris deadline).
    pub fn read_timeout(mut self, t: Duration) -> Self {
        self.read_timeout = t;
        self
    }

    /// Per-write socket timeout.
    pub fn write_timeout(mut self, t: Duration) -> Self {
        self.write_timeout = t;
        self
    }

    /// Fix the `Retry-After` advertised on `503` responses instead of
    /// deriving it from queue depth / drain state.
    pub fn retry_after(mut self, t: Duration) -> Self {
        self.retry_after = Some(t);
        self
    }

    /// How long a graceful shutdown waits for in-flight requests.
    pub fn drain_deadline(mut self, t: Duration) -> Self {
        self.drain_deadline = t;
        self
    }

    /// Expose `GET /debug/panic` (test-only; see the field docs).
    pub fn debug_panic_route(mut self, enabled: bool) -> Self {
        self.debug_panic_route = enabled;
        self
    }

    /// Record metrics into `registry` instead of the process-wide
    /// [`provbench_obs::global`] one (test isolation; multiple endpoints
    /// in one process).
    pub fn registry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Where the served graph came from (e.g. "snapshot (warm)"),
    /// surfaced in `/stats`.
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Normalize the configuration: workers and queue depth are clamped
    /// to at least 1. Idempotent.
    pub fn build(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.queue_depth = self.queue_depth.max(1);
        self
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::new()
    }
}

/// LRU cache of parsed query plans keyed by query text. "Recency" is a
/// monotone stamp bumped on every hit; eviction drops the smallest.
struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, (Arc<Query>, u64)>,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    fn get(&mut self, text: &str) -> Option<Arc<Query>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(text).map(|(plan, stamp)| {
            *stamp = tick;
            Arc::clone(plan)
        })
    }

    fn insert(&mut self, text: String, plan: Arc<Query>) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&text) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.tick += 1;
        self.entries.insert(text, (plan, self.tick));
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Liveness and readiness state shared by every clone of an
/// [`Endpoint`] (the serving loop clones one per worker). Operational
/// counts that belong on `/metrics` too (panics, quarantined files,
/// lint errors, plan-cache traffic) live in [`EndpointMetrics`] instead,
/// so `/stats`, `/readyz` and `/metrics` read one source of truth.
#[derive(Debug, Default)]
struct Health {
    /// A corpus graph is loaded and the endpoint may answer queries.
    ready: AtomicBool,
    /// A background rebuild is in flight. Informational only: while a
    /// previously loaded graph is being served, a rebuild does not make
    /// the endpoint unready.
    rebuilding: AtomicBool,
    /// A graceful shutdown is in progress: `/readyz` answers `503` with
    /// `"draining":true` so load balancers stop routing here, and
    /// `/sparql` refuses new queries while in-flight ones finish.
    draining: AtomicBool,
    /// Connections accepted into the worker queue and not yet answered.
    inflight: AtomicUsize,
}

/// The endpoint's registry plus pre-registered handles for the metrics
/// it records on hot paths (handles are lock-free to bump).
struct EndpointMetrics {
    registry: Arc<Registry>,
    panics: Arc<Counter>,
    socket_errors: Arc<Counter>,
    ingest_errors: Arc<Gauge>,
    lint_errors: Arc<Gauge>,
    plan_hits: Arc<Counter>,
    plan_misses: Arc<Counter>,
    plan_entries: Arc<Gauge>,
}

impl EndpointMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        let panics = registry.counter(
            PANICS_TOTAL,
            "Request-handler panics caught (and survived) by the worker pool",
        );
        let socket_errors = registry.counter(
            SOCKET_ERRORS_TOTAL,
            "Accepted connections closed because a socket option could not be set",
        );
        let ingest_errors = registry.gauge(
            INGEST_ERRORS,
            "Source files quarantined by the ingest run that produced the live graph",
        );
        let lint_errors = registry.gauge(
            LINT_ERRORS,
            "Error-severity findings in the published lint report",
        );
        let plan_hits = registry.counter(PLAN_CACHE_HITS, "Plan-cache lookups served from cache");
        let plan_misses = registry.counter(
            PLAN_CACHE_MISSES,
            "Plan-cache lookups that had to parse (including unparsable queries)",
        );
        let plan_entries = registry.gauge(PLAN_CACHE_ENTRIES, "Parsed plans currently cached");
        EndpointMetrics {
            registry,
            panics,
            socket_errors,
            ingest_errors,
            lint_errors,
            plan_hits,
            plan_misses,
            plan_entries,
        }
    }
}

/// Normalize a request path to a bounded route label so `/metrics`
/// cardinality cannot be driven by client-chosen paths.
fn route_label(path: &str) -> &'static str {
    match path {
        "/" => "/",
        "/sparql" => "/sparql",
        "/healthz" => "/healthz",
        "/readyz" => "/readyz",
        "/stats" => "/stats",
        "/lint" => "/lint",
        "/metrics" => "/metrics",
        _ => "other",
    }
}

/// Normalize a request method the same way.
fn method_label(method: &str) -> &'static str {
    match method {
        "GET" => "GET",
        "POST" => "POST",
        "HEAD" => "HEAD",
        _ => "other",
    }
}

/// Status code as a static label (every status the endpoint emits).
fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        408 => "408",
        500 => "500",
        503 => "503",
        _ => "other",
    }
}

/// Lock a mutex, recovering the guard if a previous holder panicked.
/// A panicking request handler must not take the whole endpoint down
/// with a poisoned plan cache or graph slot.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A shutdown request shared between the serving loop and whoever
/// triggers it — a signal handler, a test, or an embedder's control
/// plane. Cloning shares the flag.
///
/// When the flag flips, [`Endpoint::serve_with_shutdown`] switches to
/// draining: `/readyz` starts answering `503` with `"draining":true`,
/// in-flight requests run to completion (bounded by
/// [`ServerConfig::drain_deadline`]), and the serve call returns `Ok`.
#[derive(Clone, Debug, Default)]
pub struct ShutdownSignal {
    requested: Arc<AtomicBool>,
}

impl ShutdownSignal {
    /// A fresh, un-triggered signal.
    pub fn new() -> Self {
        ShutdownSignal::default()
    }

    /// Request shutdown. Idempotent, callable from any thread (and, via
    /// the installed handler, from signal context — it is a single
    /// atomic store).
    pub fn request(&self) {
        self.requested.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.requested.load(Ordering::SeqCst)
    }

    /// Route `SIGTERM` and `SIGINT` (Ctrl-C) to this signal so a served
    /// process drains instead of dying mid-response. Returns whether
    /// the handlers are active for *this* signal: only the first signal
    /// instance in the process can own them (the handler target is a
    /// process-wide slot), and non-Unix platforms have none.
    pub fn install_termination_handler(&self) -> bool {
        self.install_os_handlers()
    }

    #[cfg(unix)]
    fn install_os_handlers(&self) -> bool {
        use std::sync::OnceLock;

        // The libc signal handler can only reach process-global state,
        // and must touch nothing but an atomic (async-signal-safety).
        static TARGET: OnceLock<Arc<AtomicBool>> = OnceLock::new();
        extern "C" fn on_terminate(_signum: i32) {
            if let Some(flag) = TARGET.get() {
                flag.store(true, Ordering::SeqCst);
            }
        }

        type SigHandler = extern "C" fn(i32);
        extern "C" {
            fn signal(signum: i32, handler: SigHandler) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;

        let target = TARGET.get_or_init(|| Arc::clone(&self.requested));
        if !Arc::ptr_eq(target, &self.requested) {
            return false; // another signal instance owns the handlers
        }
        unsafe {
            signal(SIGINT, on_terminate);
            signal(SIGTERM, on_terminate);
        }
        true
    }

    #[cfg(not(unix))]
    fn install_os_handlers(&self) -> bool {
        false
    }
}

/// A SPARQL endpoint over one corpus graph. The graph is swappable at
/// runtime ([`Endpoint::replace_graph`]) so a background rebuild can
/// publish a fresh corpus while old requests finish against the
/// previous one.
#[derive(Clone)]
pub struct Endpoint {
    graph: Arc<Mutex<Arc<Graph>>>,
    config: ServerConfig,
    plans: Arc<Mutex<PlanCache>>,
    source: Arc<Mutex<Option<Arc<str>>>>,
    /// Pre-rendered JSON lint report for `GET /lint` — published by the
    /// loader (the endpoint itself stays ignorant of the linter).
    lint_report: Arc<Mutex<Option<Arc<str>>>>,
    health: Arc<Health>,
    metrics: Arc<EndpointMetrics>,
}

impl Endpoint {
    /// An endpoint serving the given graph with default configuration.
    pub fn new(graph: Graph) -> Self {
        Endpoint::with_config(graph, ServerConfig::new())
    }

    /// An endpoint with explicit configuration (a [`ServerConfig`], or
    /// anything convertible into one).
    pub fn with_config(graph: Graph, config: impl Into<ServerConfig>) -> Self {
        let ep = Endpoint::unready(config);
        *lock(&ep.graph) = Arc::new(graph);
        ep.health.ready.store(true, Ordering::SeqCst);
        ep
    }

    /// An endpoint with no corpus loaded yet: `/healthz` answers but
    /// `/readyz` and `/sparql` return `503` until [`replace_graph`]
    /// publishes a graph. This is how `provbench serve` starts when the
    /// corpus is still loading in the background.
    ///
    /// [`replace_graph`]: Endpoint::replace_graph
    pub fn unready(config: impl Into<ServerConfig>) -> Self {
        let config = config.into().build();
        let registry = config
            .registry
            .clone()
            .unwrap_or_else(|| Arc::clone(provbench_obs::global()));
        let source = config.source.clone().map(Arc::from);
        Endpoint {
            graph: Arc::new(Mutex::new(Arc::new(Graph::new()))),
            plans: Arc::new(Mutex::new(PlanCache::new(config.plan_cache_size))),
            source: Arc::new(Mutex::new(source)),
            lint_report: Arc::new(Mutex::new(None)),
            health: Arc::new(Health::default()),
            metrics: Arc::new(EndpointMetrics::new(registry)),
            config,
        }
    }

    /// Record where the served graph came from; surfaced in `/stats`.
    #[deprecated(note = "use ServerConfig::source, or replace_graph's source argument")]
    pub fn with_source(self, source: impl Into<String>) -> Self {
        *lock(&self.source) = Some(Arc::from(source.into()));
        self
    }

    /// Atomically publish a new graph and mark the endpoint ready. In
    /// flight requests keep their `Arc` to the old graph; new requests
    /// see the new one. Clears the rebuilding flag.
    pub fn replace_graph(&self, graph: Graph, source: impl Into<String>) {
        *lock(&self.graph) = Arc::new(graph);
        *lock(&self.source) = Some(Arc::from(source.into()));
        self.health.ready.store(true, Ordering::SeqCst);
        self.health.rebuilding.store(false, Ordering::SeqCst);
    }

    /// Flag (or clear) an in-flight background rebuild. Readiness is
    /// unaffected while a previously published graph is being served.
    pub fn set_rebuilding(&self, rebuilding: bool) {
        self.health.rebuilding.store(rebuilding, Ordering::SeqCst);
    }

    /// Record how many source files the live graph's ingest run
    /// quarantined (surfaced by `/readyz`, `/stats` and `/metrics`).
    pub fn set_ingest_errors(&self, n: usize) {
        self.metrics.ingest_errors.set(n as i64);
    }

    /// Publish a pre-rendered JSON lint report (served verbatim by
    /// `GET /lint`) along with its error-severity finding count
    /// (surfaced by `/readyz`, `/stats` and `/metrics`). The loader
    /// renders the report; the endpoint only stores bytes.
    pub fn set_lint_report(&self, json: impl Into<String>, errors: usize) {
        *lock(&self.lint_report) = Some(Arc::from(json.into()));
        self.metrics.lint_errors.set(errors as i64);
    }

    /// Error-severity findings in the published lint report.
    pub fn lint_errors(&self) -> usize {
        self.metrics.lint_errors.get().max(0) as usize
    }

    /// Whether a corpus graph has been published.
    pub fn is_ready(&self) -> bool {
        self.health.ready.load(Ordering::SeqCst)
    }

    /// Request-handler panics survived by the worker pool so far.
    pub fn panics_total(&self) -> u64 {
        self.metrics.panics.get()
    }

    /// The currently published graph.
    fn graph(&self) -> Arc<Graph> {
        Arc::clone(&lock(&self.graph))
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The metrics registry this endpoint records into and serves on
    /// `GET /metrics`.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.metrics.registry
    }

    /// Number of parsed plans currently cached (exposed for tests and
    /// the `/stats` route).
    pub fn cached_plans(&self) -> usize {
        lock(&self.plans).len()
    }

    /// Handle one parsed request (exposed for tests).
    pub fn handle(&self, request: &Request) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/") => Response::status(200)
                .content_type("text/html")
                .body(self.index_page()),
            ("GET", "/sparql") | ("POST", "/sparql") => self.sparql(request),
            ("GET", "/healthz") => Response::status(200).body("ok"),
            ("GET", "/readyz") => self.readyz(),
            ("GET", "/stats") => self.stats(),
            ("GET", "/lint") => self.lint(),
            ("GET", "/metrics") => Response::status(200)
                .content_type("text/plain; version=0.0.4")
                .body(self.metrics.registry.render_prometheus()),
            ("GET", "/debug/panic") if self.config.debug_panic_route => {
                panic!("debug panic route hit")
            }
            _ => Response::status(404).body("not found"),
        }
    }

    /// Record one served request into the registry. Called by the
    /// serving loop (both the worker pool and the acceptor's inline
    /// `503` path), so `/metrics` sees every answered connection.
    fn record_request(&self, method: &str, route: &str, status: u16, elapsed: Duration) {
        self.metrics
            .registry
            .counter_with(
                HTTP_REQUESTS_TOTAL,
                "HTTP requests served, by method, route and status",
                &[
                    ("method", method),
                    ("route", route),
                    ("status", status_label(status)),
                ],
            )
            .inc();
        self.metrics
            .registry
            .histogram_with(
                HTTP_REQUEST_SECONDS,
                "Request wall-clock time (parse to response), by route",
                LATENCY_BUCKETS,
                &[("route", route)],
            )
            .observe_duration(elapsed);
    }

    /// Seconds to advertise in `Retry-After` on a `503`. An explicit
    /// [`ServerConfig::retry_after`] wins; otherwise, while draining,
    /// the drain deadline (after which this process is gone and a retry
    /// will land elsewhere); otherwise the estimated time for the
    /// worker pool to clear a full queue, clamped to 1..=30 s.
    fn retry_after_secs(&self) -> u64 {
        if let Some(t) = self.config.retry_after {
            return t.as_secs().max(1);
        }
        if self.health.draining.load(Ordering::SeqCst) {
            return self.config.drain_deadline.as_secs().clamp(1, 60);
        }
        let workers = self.config.workers.max(1) as u64;
        (self.config.queue_depth.max(1) as u64)
            .div_ceil(workers)
            .clamp(1, 30)
    }

    /// Attach the derived `Retry-After` to a `503` response.
    fn with_retry_after(&self, response: Response) -> Response {
        response.header("Retry-After", &self.retry_after_secs().to_string())
    }

    /// Readiness: `200` when a corpus is loaded, the worker pool has
    /// room and the endpoint is not draining; `503` otherwise. A
    /// background rebuild alone does not flip readiness — only the cold
    /// start (no graph published yet) does.
    fn readyz(&self) -> Response {
        let corpus_loaded = self.is_ready();
        let draining = self.health.draining.load(Ordering::SeqCst);
        let inflight = self.health.inflight.load(Ordering::SeqCst);
        let capacity = self.config.workers.max(1) + self.config.queue_depth.max(1);
        let saturated = inflight >= capacity;
        let ready = corpus_loaded && !saturated && !draining;
        let body = format!(
            "{{\"ready\":{ready},\"corpus_loaded\":{corpus_loaded},\
             \"rebuilding\":{},\"draining\":{draining},\"saturated\":{saturated},\
             \"inflight\":{inflight},\"ingest_errors\":{},\"lint_errors\":{}}}",
            self.health.rebuilding.load(Ordering::SeqCst),
            self.metrics.ingest_errors.get(),
            self.metrics.lint_errors.get(),
        );
        let mut response = Response::status(if ready { 200 } else { 503 })
            .content_type("application/json")
            .body(body);
        if !ready {
            response = self.with_retry_after(response);
        }
        response
    }

    fn stats(&self) -> Response {
        let graph = self.graph();
        let source = match &*lock(&self.source) {
            Some(s) => format!(",\"source\":\"{}\"", escape_json(s)),
            None => String::new(),
        };
        let rows_emitted = self
            .metrics
            .registry
            .counter(
                provbench_query::plan::ROWS_EMITTED_TOTAL,
                "Solution rows emitted by query evaluations",
            )
            .get();
        Response::status(200)
            .content_type("application/json")
            .body(format!(
                "{{\"triples\":{},\"terms\":{},\"cached_plans\":{},\"eval_jobs\":{},\
                 \"rows_emitted_total\":{rows_emitted},\
                 \"ready\":{},\"rebuilding\":{},\"panics_total\":{},\
                 \"ingest_errors\":{},\"lint_errors\":{}{source}}}",
                graph.len(),
                graph.term_count(),
                self.cached_plans(),
                self.config.eval_jobs,
                self.is_ready(),
                self.health.rebuilding.load(Ordering::SeqCst),
                self.panics_total(),
                self.metrics.ingest_errors.get(),
                self.metrics.lint_errors.get(),
            ))
    }

    /// The published lint report, verbatim; `503` until a loader calls
    /// [`Endpoint::set_lint_report`].
    fn lint(&self) -> Response {
        match &*lock(&self.lint_report) {
            Some(report) => Response::status(200)
                .content_type("application/json")
                .body(report.to_string()),
            None => self.with_retry_after(
                Response::status(503)
                    .content_type("application/json")
                    .body("{\"error\":\"no lint report published yet\"}"),
            ),
        }
    }

    /// Fetch the parsed plan for `text`, parsing and caching on miss.
    fn plan(&self, text: &str) -> Result<Arc<Query>, QueryParseError> {
        if let Some(plan) = lock(&self.plans).get(text) {
            self.metrics.plan_hits.inc();
            return Ok(plan);
        }
        self.metrics.plan_misses.inc();
        let plan = Arc::new(parse_query(text)?);
        let mut plans = lock(&self.plans);
        plans.insert(text.to_owned(), Arc::clone(&plan));
        self.metrics.plan_entries.set(plans.len() as i64);
        Ok(plan)
    }

    /// Evaluation options for one request: the configured deadline and
    /// row budget, with `timeout=<ms>` allowed to lower the deadline.
    fn request_options(&self, request: &Request) -> EvalOptions {
        let timeout = request
            .param("timeout")
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_millis)
            .filter(|t| *t < self.config.query_timeout)
            .unwrap_or(self.config.query_timeout);
        let mut opts = EvalOptions::default()
            .with_timeout(timeout)
            .with_jobs(self.config.eval_jobs);
        opts.row_budget = self.config.row_budget;
        opts
    }

    fn sparql(&self, request: &Request) -> Response {
        if self.health.draining.load(Ordering::SeqCst) {
            // Refuse new queries during a graceful shutdown; probes and
            // /metrics keep answering so the drain stays observable.
            return self.with_retry_after(
                Response::status(503)
                    .content_type("application/json")
                    .body("{\"error\":\"draining\",\"message\":\"server is shutting down\"}"),
            );
        }
        if !self.is_ready() {
            return self.with_retry_after(
                Response::status(503)
                    .content_type("application/json")
                    .body("{\"error\":\"unavailable\",\"message\":\"corpus not loaded yet\"}"),
            );
        }
        // SPARQL protocol: GET ?query=… or POST with a form-encoded or
        // raw query body.
        let query = request.param("query").map(str::to_owned).or_else(|| {
            if request.method == "POST" {
                let body = request.body.trim();
                if let Some(rest) = body.strip_prefix("query=") {
                    Some(crate::http::url_decode(rest))
                } else if !body.is_empty() {
                    Some(body.to_owned())
                } else {
                    None
                }
            } else {
                None
            }
        });
        let Some(query) = query else {
            return Response::status(400).body("missing `query` parameter");
        };
        let plan = match self.plan(&query) {
            Ok(plan) => plan,
            Err(e) => return parse_error_response(&e),
        };
        let graph = self.graph();
        let engine = QueryEngine::with_options(&graph, self.request_options(request))
            .with_metrics(&self.metrics.registry);
        let prepared = engine.prepare_parsed(plan);
        let want_tsv =
            request.param("format") == Some("tsv") || request.accepts("text/tab-separated-values");
        // Serialize incrementally from the streaming row iterator:
        // each row goes straight into the serialized buffer instead of
        // materializing the whole solution set first, and `LIMIT`ed
        // queries stop evaluating once the limit is reached. The
        // status line is still decided only after the stream finishes,
        // so a mid-stream deadline or row-budget trip yields a clean
        // 408 under the existing write-timeout machinery — never a
        // truncated 200.
        let result = (|| -> Result<Response, QueryError> {
            let mut rows = prepared.rows()?;
            Ok(if want_tsv {
                let mut writer = TsvRowsWriter::new(rows.variables());
                for row in &mut rows {
                    writer.push(&row?);
                }
                Response::status(200)
                    .content_type("text/tab-separated-values")
                    .body(writer.finish())
            } else {
                let mut writer = JsonRowsWriter::new(rows.variables());
                for row in &mut rows {
                    writer.push(&row?);
                }
                Response::status(200)
                    .content_type("application/sparql-results+json")
                    .body(writer.finish())
            })
        })();
        match result {
            Ok(response) => response,
            Err(QueryError::Timeout(m)) => Response::status(408)
                .content_type("application/json")
                .body(format!(
                    "{{\"error\":\"timeout\",\"message\":\"{}\"}}",
                    escape_json(&m)
                )),
            Err(e) => Response::status(400).body(format!("query error: {e}")),
        }
    }

    fn index_page(&self) -> String {
        format!(
            r#"<!doctype html>
<html><head><title>ProvBench SPARQL endpoint</title></head>
<body>
<h1>ProvBench corpus SPARQL endpoint</h1>
<p>{} triples loaded. POST or GET <code>/sparql</code> with a
<code>query</code> parameter; results are SPARQL JSON
(<code>?format=tsv</code> for text).</p>
<form method="get" action="/sparql">
<textarea name="query" rows="10" cols="80">
PREFIX prov: &lt;http://www.w3.org/ns/prov#&gt;
PREFIX wfprov: &lt;http://purl.org/wf4ever/wfprov#&gt;
SELECT ?run ?start WHERE {{
  ?run a wfprov:WorkflowRun .
  OPTIONAL {{ ?run prov:startedAtTime ?start }}
}} LIMIT 10
</textarea><br>
<input type="hidden" name="format" value="tsv">
<input type="submit" value="Run query">
</form>
</body></html>"#,
            self.graph().len()
        )
    }

    /// Record a connection's final outcome — exactly one increment per
    /// connection the server touched — and return the label so the
    /// serving loop (and tests) can see it.
    fn record_conn(&self, result: &'static str) -> &'static str {
        self.metrics
            .registry
            .counter_with(
                CONNECTIONS_TOTAL,
                "Connections handled, by final outcome",
                &[("result", result)],
            )
            .inc();
        result
    }

    /// Serve one connection end to end: bound it, parse, dispatch,
    /// write — and account for every way that can fail. Returns the
    /// outcome label recorded in `provbench_connections_total`:
    ///
    /// * `"ok"` — a complete response was delivered (including `400`s
    ///   for malformed requests);
    /// * `"read_timeout"` — the request did not arrive within the
    ///   read-timeout budget; a `408` was attempted;
    /// * `"read_error"` — the connection died while reading; nothing
    ///   could be answered;
    /// * `"write_error"` — the response could not be fully written
    ///   (partial write, reset, or write timeout);
    /// * `"socket_error"` — a socket option could not be set; the
    ///   connection was closed unserved (and `socket_errors_total`
    ///   incremented).
    ///
    /// The invariant the chaos sweep leans on: exactly one
    /// `connections_total` increment per call, at most one
    /// `http_requests_total` increment, and a `"ok"` outcome means the
    /// peer holds a byte-complete response.
    pub fn serve_conn(&self, conn: &mut dyn Conn) -> &'static str {
        let start = Instant::now();
        // A socket we cannot bound is a socket we do not serve:
        // proceeding without timeouts would hand a hostile peer an
        // unbounded worker stall.
        if conn
            .set_read_timeout(Some(self.config.read_timeout))
            .is_err()
            || conn
                .set_write_timeout(Some(self.config.write_timeout))
                .is_err()
        {
            self.metrics.socket_errors.inc();
            return self.record_conn("socket_error");
        }
        let deadline = start + self.config.read_timeout;
        match parse_request(&mut DeadlineReader::new(conn, deadline)) {
            Ok(request) => {
                let method = method_label(&request.method);
                let route = route_label(&request.path);
                // Panic isolation: a handler panic is converted to a 500
                // and counted; the worker thread survives to serve the
                // next connection instead of silently shrinking the pool.
                let response = catch_unwind(AssertUnwindSafe(|| self.handle(&request)))
                    .unwrap_or_else(|_| {
                        self.metrics.panics.inc();
                        Response::status(500)
                            .body("internal server error: request handler panicked")
                    });
                self.record_request(method, route, response.status, start.elapsed());
                self.write_response(conn, &response)
            }
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                // Slowloris or a stalled peer: answer 408 if the write
                // side still works, but the connection outcome is the
                // timeout either way.
                let response = Response::status(408)
                    .content_type("application/json")
                    .body("{\"error\":\"timeout\",\"message\":\"request not received within the read-timeout budget\"}");
                self.record_request("other", "other", 408, start.elapsed());
                let _ = conn
                    .write_all(&response.to_bytes())
                    .and_then(|()| conn.flush());
                self.record_conn("read_timeout")
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let response = Response::status(400).body(format!("bad request: {e}"));
                self.record_request("other", "other", 400, start.elapsed());
                self.write_response(conn, &response)
            }
            Err(_) => self.record_conn("read_error"),
        }
    }

    /// Write a response as one buffer so truncation is an error, not a
    /// torn response; record the connection outcome.
    fn write_response(&self, conn: &mut dyn Conn, response: &Response) -> &'static str {
        match conn
            .write_all(&response.to_bytes())
            .and_then(|()| conn.flush())
        {
            Ok(()) => self.record_conn("ok"),
            Err(_) => self.record_conn("write_error"),
        }
    }

    /// Answer a connection the worker queue has no room for: drain the
    /// request (with a bounded wait — closing with unread bytes resets
    /// the connection before the client can read our answer), write a
    /// `503` with the derived `Retry-After`, and count the rejection.
    fn reject_conn(&self, conn: &mut dyn Conn) {
        let start = Instant::now();
        let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = conn.set_write_timeout(Some(self.config.write_timeout));
        let deadline = start + Duration::from_millis(500);
        let (method, route) = match parse_request(&mut DeadlineReader::new(conn, deadline)) {
            Ok(request) => (method_label(&request.method), route_label(&request.path)),
            Err(_) => ("other", "other"),
        };
        let response = self
            .with_retry_after(Response::status(503))
            .body("server busy, retry later");
        self.record_request(method, route, 503, start.elapsed());
        let _ = conn
            .write_all(&response.to_bytes())
            .and_then(|()| conn.flush());
        self.record_conn("rejected");
    }

    /// Serve forever on the given address with a bounded worker pool.
    pub fn serve(&self, addr: impl ToSocketAddrs) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        self.serve_on(listener)
    }

    /// Serve forever on an existing listener (no shutdown signal — see
    /// [`Endpoint::serve_with_shutdown`]). `config.workers` threads
    /// drain a queue of at most `config.queue_depth` waiting
    /// connections; when the queue is full the acceptor answers `503`
    /// inline so the server's thread count stays fixed under any burst.
    pub fn serve_on(&self, listener: TcpListener) -> io::Result<()> {
        self.serve_with_shutdown(listener, &ShutdownSignal::new())
    }

    /// Serve on an existing listener until `shutdown` fires, then drain
    /// gracefully and return `Ok`.
    ///
    /// The drain sequence: `/readyz` flips to `503` + `"draining":true`
    /// and `/sparql` refuses new queries (probes keep answering, so the
    /// drain is observable); in-flight requests run to completion,
    /// bounded by [`ServerConfig::drain_deadline`]; the drain duration
    /// lands in `provbench_shutdown_drain_seconds`; and the call
    /// returns so the process can exit cleanly.
    pub fn serve_with_shutdown(
        &self,
        listener: TcpListener,
        shutdown: &ShutdownSignal,
    ) -> io::Result<()> {
        // Nonblocking accept so the loop observes the shutdown flag
        // promptly (a signal cannot wake a blocking accept portably).
        listener.set_nonblocking(true)?;
        const POLL: Duration = Duration::from_millis(2);
        let (tx, rx) = sync_channel::<Box<dyn Conn>>(self.config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.config.workers.max(1));
        for _ in 0..self.config.workers.max(1) {
            let endpoint = self.clone();
            let rx: Arc<Mutex<Receiver<Box<dyn Conn>>>> = Arc::clone(&rx);
            workers.push(std::thread::spawn(move || loop {
                let next = lock(&rx).recv();
                let Ok(mut conn) = next else {
                    break; // acceptor gone
                };
                endpoint.serve_conn(conn.as_mut());
                endpoint.health.inflight.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        let mut drain_started: Option<Instant> = None;
        loop {
            if drain_started.is_none() && shutdown.is_requested() {
                self.health.draining.store(true, Ordering::SeqCst);
                drain_started = Some(Instant::now());
            }
            if let Some(started) = drain_started {
                // Keep accepting while draining (late probes get a
                // draining 503, not a refused connection) until the
                // in-flight work is done or the deadline passes.
                let done = self.health.inflight.load(Ordering::SeqCst) == 0;
                if done || started.elapsed() >= self.config.drain_deadline {
                    break;
                }
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    // Accepted sockets don't inherit the listener's
                    // nonblocking mode on every platform; be explicit.
                    if stream.set_nonblocking(false).is_err() {
                        self.metrics.socket_errors.inc();
                        self.record_conn("socket_error");
                        continue;
                    }
                    self.health.inflight.fetch_add(1, Ordering::SeqCst);
                    match tx.try_send(Box::new(stream)) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut conn)) => {
                            self.health.inflight.fetch_sub(1, Ordering::SeqCst);
                            self.reject_conn(conn.as_mut());
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            self.health.inflight.fetch_sub(1, Ordering::SeqCst);
                            break;
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Stop feeding the pool; workers exit when the queue is empty.
        drop(tx);
        let started = drain_started.unwrap_or_else(Instant::now);
        let deadline = started + self.config.drain_deadline;
        while self.health.inflight.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(POLL);
        }
        if self.health.inflight.load(Ordering::SeqCst) == 0 {
            // Fully drained: join the pool so every response is flushed
            // before the caller exits the process. (Past the deadline a
            // straggler may still hold a worker; leave it detached
            // rather than hang the shutdown.)
            for worker in workers {
                let _ = worker.join();
            }
        }
        self.metrics
            .registry
            .histogram(
                SHUTDOWN_DRAIN_SECONDS,
                "Graceful-shutdown drain duration",
                LATENCY_BUCKETS,
            )
            .observe_duration(started.elapsed());
        Ok(())
    }
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render a parse error as a 400 with a machine-readable source span.
fn parse_error_response(e: &QueryParseError) -> Response {
    Response::status(400)
        .content_type("application/json")
        .body(format!(
            "{{\"error\":\"parse\",\"message\":\"{}\",\"line\":{},\"column\":{},\"end_line\":{},\"end_column\":{}}}",
            escape_json(&e.message),
            e.line,
            e.column,
            e.end_line,
            e.end_column,
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_rdf::parse_turtle;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn endpoint() -> Endpoint {
        endpoint_with(ServerConfig::new())
    }

    /// Test endpoints get their own registry so metric assertions don't
    /// see traffic from other tests sharing the process-global one.
    fn endpoint_with(config: ServerConfig) -> Endpoint {
        let (g, _) = parse_turtle(
            r#"@prefix wfprov: <http://purl.org/wf4ever/wfprov#> .
               @prefix e: <http://e/> .
               e:r1 a wfprov:WorkflowRun . e:r2 a wfprov:WorkflowRun ."#,
        )
        .unwrap();
        Endpoint::with_config(g, config.registry(Arc::new(Registry::new())))
    }

    fn request(raw: &str) -> Request {
        parse_request(&mut raw.as_bytes()).unwrap()
    }

    #[test]
    fn index_and_stats() {
        let ep = endpoint();
        let r = ep.handle(&request("GET / HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 200);
        assert!(r.body.contains("SPARQL endpoint"));
        let r = ep.handle(&request("GET /stats HTTP/1.1\r\n\r\n"));
        assert!(r.body.contains("\"triples\":2"));
        let r = ep.handle(&request("GET /nope HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 404);
    }

    #[test]
    fn get_query_json() {
        let ep = endpoint();
        let q = crate::http::url_encode(
            "PREFIX wfprov: <http://purl.org/wf4ever/wfprov#> SELECT ?r WHERE { ?r a wfprov:WorkflowRun }",
        );
        let r = ep.handle(&request(&format!("GET /sparql?query={q} HTTP/1.1\r\n\r\n")));
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(r.content_type, "application/sparql-results+json");
        assert!(r.body.contains("http://e/r1"));
    }

    #[test]
    fn streamed_body_matches_materialized_serialization() {
        // The streamed /sparql body must byte-equal serializing a full
        // select() of the same query — the golden-body contract the CI
        // serve-smoke also checks over HTTP.
        let ep = endpoint();
        let text = "PREFIX wfprov: <http://purl.org/wf4ever/wfprov#> \
                    SELECT ?r ?t WHERE { ?r a ?t . ?r a wfprov:WorkflowRun } ORDER BY ?r";
        let q = crate::http::url_encode(text);
        for format in ["", "&format=tsv"] {
            let r = ep.handle(&request(&format!(
                "GET /sparql?query={q}{format} HTTP/1.1\r\n\r\n"
            )));
            assert_eq!(r.status, 200, "{}", r.body);
            let graph = ep.graph();
            let solutions = QueryEngine::new(&graph)
                .prepare(text)
                .unwrap()
                .select()
                .unwrap();
            let golden = if format.is_empty() {
                crate::results::solutions_to_json(&solutions)
            } else {
                crate::results::solutions_to_tsv(&solutions)
            };
            assert_eq!(r.body, golden);
        }
        // The rows the streams emitted are visible in /stats.
        let r = ep.handle(&request("GET /stats HTTP/1.1\r\n\r\n"));
        assert!(r.body.contains("\"rows_emitted_total\":4"), "{}", r.body);
    }

    #[test]
    fn post_raw_query_tsv() {
        let ep = endpoint();
        let body = "PREFIX wfprov: <http://purl.org/wf4ever/wfprov#> SELECT ?r WHERE { ?r a wfprov:WorkflowRun } ORDER BY ?r";
        let raw = format!(
            "POST /sparql?format=tsv HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let r = ep.handle(&request(&raw));
        assert_eq!(r.status, 200);
        assert_eq!(r.body.lines().count(), 3);
    }

    #[test]
    fn bad_query_is_400_with_span() {
        let ep = endpoint();
        let r = ep.handle(&request("GET /sparql?query=NOT+SPARQL HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 400);
        assert_eq!(r.content_type, "application/json");
        assert!(r.body.contains("\"error\":\"parse\""), "{}", r.body);
        assert!(r.body.contains("\"line\":1"), "{}", r.body);
        assert!(r.body.contains("\"column\":"), "{}", r.body);
        let r = ep.handle(&request("GET /sparql HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 400);
    }

    #[test]
    fn plan_cache_hits_and_evicts() {
        let ep = endpoint();
        let q = crate::http::url_encode("SELECT ?s WHERE { ?s ?p ?o }");
        assert_eq!(ep.cached_plans(), 0);
        ep.handle(&request(&format!("GET /sparql?query={q} HTTP/1.1\r\n\r\n")));
        assert_eq!(ep.cached_plans(), 1);
        // Same text again: served from cache, no growth.
        ep.handle(&request(&format!("GET /sparql?query={q} HTTP/1.1\r\n\r\n")));
        assert_eq!(ep.cached_plans(), 1);
        // Unparsable queries are not cached.
        ep.handle(&request("GET /sparql?query=NOT+SPARQL HTTP/1.1\r\n\r\n"));
        assert_eq!(ep.cached_plans(), 1);

        // The cache's traffic is mirrored on the registry.
        let rendered = ep.registry().render_prometheus();
        assert!(
            rendered.contains("provbench_plan_cache_hits_total 1"),
            "{rendered}"
        );
        assert!(
            rendered.contains("provbench_plan_cache_misses_total 2"),
            "{rendered}"
        );
        assert!(
            rendered.contains("provbench_plan_cache_entries 1"),
            "{rendered}"
        );

        // Eviction honours recency: with capacity 2, touching `a` makes
        // `b` the eviction victim.
        let mut cache = PlanCache::new(2);
        let plan = |text: &str| Arc::new(parse_query(text).unwrap());
        cache.insert("a".into(), plan("SELECT ?a WHERE { ?a ?p ?o }"));
        cache.insert("b".into(), plan("SELECT ?b WHERE { ?b ?p ?o }"));
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), plan("SELECT ?c WHERE { ?c ?p ?o }"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none(), "least-recent entry evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn exhausted_budget_is_408() {
        let (g, _) = parse_turtle(
            r#"@prefix e: <http://e/> .
               e:a e:p e:b . e:b e:p e:c . e:c e:p e:d . e:d e:p e:e ."#,
        )
        .unwrap();
        let ep = Endpoint::with_config(
            g,
            ServerConfig::new()
                .row_budget(Some(3))
                .registry(Arc::new(Registry::new())),
        );
        let q = crate::http::url_encode("SELECT * WHERE { ?a ?b ?c . ?d ?e ?f }");
        let r = ep.handle(&request(&format!("GET /sparql?query={q} HTTP/1.1\r\n\r\n")));
        assert_eq!(r.status, 408, "{}", r.body);
        assert!(r.body.contains("\"error\":\"timeout\""), "{}", r.body);
        // The timed-out evaluation is visible on the registry.
        let rendered = ep.registry().render_prometheus();
        assert!(
            rendered.contains("provbench_query_evals_total{result=\"timeout\"} 1"),
            "{rendered}"
        );
    }

    #[test]
    fn timeout_param_cannot_raise_configured_limit() {
        let ep = Endpoint::with_config(
            Graph::new(),
            ServerConfig::new().timeout(Duration::from_millis(50)),
        );
        let req = request("GET /sparql?timeout=10&query=x HTTP/1.1\r\n\r\n");
        let opts = ep.request_options(&req);
        assert!(opts.deadline.is_some());
        // Larger than configured: clamped back to the 50ms limit.
        let req = request("GET /sparql?timeout=999999&query=x HTTP/1.1\r\n\r\n");
        let opts = ep.request_options(&req);
        let remaining = opts
            .deadline
            .unwrap()
            .saturating_duration_since(std::time::Instant::now());
        assert!(remaining <= Duration::from_millis(50), "{remaining:?}");
    }

    #[test]
    fn serves_concurrent_clients() {
        let ep = endpoint();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ep.clone();
        std::thread::spawn(move || {
            let _ = server.serve_on(listener);
        });
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    write!(stream, "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
                    let mut response = String::new();
                    stream.read_to_string(&mut response).unwrap();
                    assert!(response.contains("\"triples\":2"), "{response}");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every concurrently-served request landed on the counter: the
        // atomics lose nothing under the full worker pool.
        let served = ep
            .registry()
            .counter_with(
                HTTP_REQUESTS_TOTAL,
                "HTTP requests served, by method, route and status",
                &[("method", "GET"), ("route", "/stats"), ("status", "200")],
            )
            .get();
        assert_eq!(served, 8);
    }

    #[test]
    fn serves_over_real_tcp() {
        let ep = endpoint();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = ep.serve_on(listener);
        });

        let mut stream = TcpStream::connect(addr).unwrap();
        let q = crate::http::url_encode(
            "SELECT ?r WHERE { ?r a <http://purl.org/wf4ever/wfprov#WorkflowRun> }",
        );
        write!(stream, "GET /sparql?query={q} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("http://e/r2"));
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let ep = endpoint();
        let q = crate::http::url_encode("SELECT ?s WHERE { ?s ?p ?o }");
        ep.handle(&request(&format!("GET /sparql?query={q} HTTP/1.1\r\n\r\n")));
        let r = ep.handle(&request("GET /metrics HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 200);
        assert!(
            r.content_type.starts_with("text/plain"),
            "{}",
            r.content_type
        );
        // Query engine metrics flowed into the endpoint's registry.
        assert!(
            r.body
                .contains("# TYPE provbench_query_eval_seconds histogram"),
            "{}",
            r.body
        );
        assert!(
            r.body
                .contains("provbench_query_evals_total{result=\"ok\"} 1"),
            "{}",
            r.body
        );
        // Exposition shape: the +Inf bucket equals _count for each series.
        let inf = r
            .body
            .lines()
            .find(|l| l.starts_with("provbench_query_eval_seconds_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket line");
        let count = r
            .body
            .lines()
            .find(|l| l.starts_with("provbench_query_eval_seconds_count"))
            .expect("_count line");
        assert_eq!(
            inf.rsplit(' ').next().unwrap(),
            count.rsplit(' ').next().unwrap()
        );
    }

    #[test]
    fn server_config_builder_roundtrips() {
        let builder = ServerConfig::new().workers(3).queue_depth(7);
        let config = builder.clone().build();
        assert_eq!(config.workers, 3);
        assert_eq!(config.queue_depth, 7);
        // The Into bound accepts the builder directly.
        let ep = Endpoint::unready(builder);
        assert_eq!(ep.config().workers, 3);
    }

    #[test]
    fn stats_reports_source_when_set() {
        let ep = endpoint();
        let r = ep.handle(&request("GET /stats HTTP/1.1\r\n\r\n"));
        assert!(!r.body.contains("\"source\""), "{}", r.body);
        let ep = endpoint_with(ServerConfig::new().source("snapshot corpus.snapshot (warm)"));
        let r = ep.handle(&request("GET /stats HTTP/1.1\r\n\r\n"));
        assert!(
            r.body
                .contains("\"source\":\"snapshot corpus.snapshot (warm)\""),
            "{}",
            r.body
        );
    }

    #[test]
    fn malformed_request_gets_400_over_tcp() {
        let ep = endpoint();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = ep.serve_on(listener);
        });

        // POST whose body never arrives: declared 50 bytes, sent 4.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Length: 50\r\n\r\nquer"
        )
        .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");

        // Absurd Content-Length: rejected without allocation.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999999\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    }

    /// A burst beyond `workers + queue_depth` must not grow threads: the
    /// overflow connections are answered `503` by the acceptor while
    /// every accepted request still completes.
    #[test]
    fn burst_beyond_pool_gets_503_not_threads() {
        // A graph big enough that the cross-join below takes real time
        // per request, keeping the single worker busy during the burst.
        let mut turtle = String::from("@prefix e: <http://e/> .\n");
        for i in 0..60 {
            turtle.push_str(&format!("e:s{i} e:p{} e:o{i} .\n", i % 7));
        }
        let (g, _) = parse_turtle(&turtle).unwrap();
        let registry = Arc::new(Registry::new());
        let ep = Endpoint::with_config(
            g,
            ServerConfig::new()
                .workers(1)
                .queue_depth(1)
                .registry(Arc::clone(&registry)),
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = ep.serve_on(listener);
        });

        let slow = crate::http::url_encode(
            "SELECT (COUNT(*) AS ?n) WHERE { ?a ?b ?c . ?d ?e ?f . ?g ?h ?i }",
        );
        let client = |q: String| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                write!(stream, "GET /sparql?query={q} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
                let mut response = String::new();
                stream.read_to_string(&mut response).unwrap();
                response
            })
        };

        // Occupy the worker, then fill the queue, then overflow.
        let busy = client(slow.clone());
        std::thread::sleep(Duration::from_millis(150));
        let queued = client(slow.clone());
        std::thread::sleep(Duration::from_millis(50));
        let overflow: Vec<_> = (0..6).map(|_| client(slow.clone())).collect();

        let responses: Vec<String> = overflow.into_iter().map(|h| h.join().unwrap()).collect();
        let rejected = responses
            .iter()
            .filter(|r| r.starts_with("HTTP/1.1 503"))
            .count();
        assert!(
            rejected >= 1,
            "expected at least one 503, got: {responses:?}"
        );
        for r in &responses {
            assert!(
                r.starts_with("HTTP/1.1 200") || r.starts_with("HTTP/1.1 503"),
                "unexpected response: {r}"
            );
        }
        // Every 503 is a complete, well-formed response: retry hint, a
        // Content-Length matching the body, and the body itself — all
        // read back before EOF, proving the acceptor never drops the
        // connection before the body is written.
        for r in responses.iter().filter(|r| r.starts_with("HTTP/1.1 503")) {
            assert!(r.contains("Retry-After: 1\r\n"), "{r}");
            let body = r.split("\r\n\r\n").nth(1).unwrap_or("");
            assert_eq!(body, "server busy, retry later", "{r}");
            assert!(
                r.contains(&format!("Content-Length: {}\r\n", body.len())),
                "{r}"
            );
        }
        // The occupied worker and the queued request still complete.
        assert!(busy.join().unwrap().starts_with("HTTP/1.1 200"));
        assert!(queued.join().unwrap().starts_with("HTTP/1.1 200"));
        // The rejections land on the request counter under status="503".
        let rendered = registry.render_prometheus();
        let line = rendered
            .lines()
            .find(|l| {
                l.starts_with("provbench_http_requests_total{") && l.contains("status=\"503\"")
            })
            .unwrap_or_else(|| panic!("no status=\"503\" counter in\n{rendered}"));
        let counted: usize = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(counted >= rejected, "{line} but {rejected} rejections seen");
    }

    /// Hostile percent-escapes must never kill a worker. Before
    /// `url_decode` walked raw bytes, `%` followed by a multibyte
    /// character panicked inside `parse_request` — *outside* the
    /// handler's panic isolation — so the worker thread died and the
    /// connection dropped with no response at all.
    #[test]
    fn hostile_percent_escapes_get_responses_not_dropped_connections() {
        let ep = endpoint();
        let probe = ep.clone();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = ep.serve_on(listener);
        });

        // `%C3%A9` decodes to `é` (a parse error, but a valid request);
        // the rest are truncated or mid-character escapes.
        for (path, q) in [
            ("/sparql", "%C3%A9"),
            ("/query", "%C3%A9"),
            ("/sparql", "%"),
            ("/sparql", "%4"),
            ("/sparql", "%zz"),
            ("/sparql", "%E2%9C"),
            ("/sparql", "a%E2%9C%93%"),
            ("/sparql", "SELECT%20%E2%9C%93"),
        ] {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "GET {path}?query={q} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            assert!(
                response.starts_with("HTTP/1.1 400") || response.starts_with("HTTP/1.1 404"),
                "{path}?query={q} got: {response:?}"
            );
        }
        // A decodable query still works end to end after the onslaught.
        let good = crate::http::url_encode(
            "PREFIX wfprov: <http://purl.org/wf4ever/wfprov#> SELECT ?r WHERE { ?r a wfprov:WorkflowRun }",
        );
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /sparql?query={good} HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert_eq!(probe.panics_total(), 0);
    }

    /// A multibyte query survives percent-encoding end to end: the
    /// SPARQL parser sees the decoded `✓` (and rejects it with a spanned
    /// parse error, not mojibake or a panic).
    #[test]
    fn multibyte_query_reaches_sparql_parser_as_utf8() {
        let ep = endpoint();
        let r = ep.handle(&request(
            "GET /sparql?query=SELECT%20%E2%9C%93 HTTP/1.1\r\n\r\n",
        ));
        assert_eq!(r.status, 400, "{}", r.body);
        assert!(r.body.contains("\"error\":\"parse\""), "{}", r.body);
        // A valid query with a multibyte literal goes the whole way.
        let q = crate::http::url_encode(
            "SELECT ?s WHERE { ?s ?p ?o FILTER (CONTAINS(STR(?o), \"✓\")) }",
        );
        let r = ep.handle(&request(&format!("GET /sparql?query={q} HTTP/1.1\r\n\r\n")));
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(ep.panics_total(), 0);
    }

    /// `eval_jobs` flows from the config into each request's
    /// `EvalOptions` and is surfaced by `/stats`; results match the
    /// serial default byte for byte.
    #[test]
    fn eval_jobs_config_flows_into_requests() {
        let parallel = endpoint_with(ServerConfig::new().eval_jobs(4));
        let serial = endpoint();
        assert_eq!(parallel.config().eval_jobs, 4);

        let r = parallel.handle(&request("GET /stats HTTP/1.1\r\n\r\n"));
        assert!(r.body.contains("\"eval_jobs\":4"), "{}", r.body);

        let q = crate::http::url_encode(
            "PREFIX wfprov: <http://purl.org/wf4ever/wfprov#> SELECT ?r WHERE { ?r a wfprov:WorkflowRun }",
        );
        let raw = format!("GET /sparql?query={q} HTTP/1.1\r\n\r\n");
        let a = parallel.handle(&request(&raw));
        let b = serial.handle(&request(&raw));
        assert_eq!(a.status, 200, "{}", a.body);
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn healthz_always_answers() {
        let ep = endpoint();
        let r = ep.handle(&request("GET /healthz HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "ok");
        // Liveness holds even before any corpus is loaded.
        let ep = Endpoint::unready(ServerConfig::new());
        let r = ep.handle(&request("GET /healthz HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 200);
    }

    #[test]
    fn unready_endpoint_rejects_queries_until_graph_published() {
        let ep = Endpoint::unready(ServerConfig::new().registry(Arc::new(Registry::new())));
        assert!(!ep.is_ready());

        let r = ep.handle(&request("GET /readyz HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 503, "{}", r.body);
        assert!(r.body.contains("\"corpus_loaded\":false"), "{}", r.body);

        let q = crate::http::url_encode("SELECT ?s WHERE { ?s ?p ?o }");
        let r = ep.handle(&request(&format!("GET /sparql?query={q} HTTP/1.1\r\n\r\n")));
        assert_eq!(r.status, 503, "{}", r.body);
        assert!(r.body.contains("\"error\":\"unavailable\""), "{}", r.body);

        // Publishing a graph flips readiness; clones observe the swap.
        let clone = ep.clone();
        let (g, _) = parse_turtle(
            r#"@prefix wfprov: <http://purl.org/wf4ever/wfprov#> .
               @prefix e: <http://e/> .
               e:r1 a wfprov:WorkflowRun ."#,
        )
        .unwrap();
        ep.replace_graph(g, "background load");
        assert!(clone.is_ready());
        let r = clone.handle(&request("GET /readyz HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 200, "{}", r.body);
        let q = crate::http::url_encode(
            "SELECT ?r WHERE { ?r a <http://purl.org/wf4ever/wfprov#WorkflowRun> }",
        );
        let r = clone.handle(&request(&format!("GET /sparql?query={q} HTTP/1.1\r\n\r\n")));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("http://e/r1"));
        let r = clone.handle(&request("GET /stats HTTP/1.1\r\n\r\n"));
        assert!(
            r.body.contains("\"source\":\"background load\""),
            "{}",
            r.body
        );
    }

    #[test]
    fn rebuilding_with_loaded_graph_stays_ready() {
        let ep = endpoint();
        ep.set_rebuilding(true);
        ep.set_ingest_errors(3);
        let r = ep.handle(&request("GET /readyz HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 200, "a served graph keeps us ready: {}", r.body);
        assert!(r.body.contains("\"rebuilding\":true"), "{}", r.body);
        assert!(r.body.contains("\"ingest_errors\":3"), "{}", r.body);
        // /readyz, /stats and /metrics all read the same gauge.
        let r = ep.handle(&request("GET /stats HTTP/1.1\r\n\r\n"));
        assert!(r.body.contains("\"ingest_errors\":3"), "{}", r.body);
        assert!(ep
            .registry()
            .render_prometheus()
            .contains("provbench_ingest_errors 3"));
        ep.set_rebuilding(false);
        let r = ep.handle(&request("GET /readyz HTTP/1.1\r\n\r\n"));
        assert!(r.body.contains("\"rebuilding\":false"), "{}", r.body);
    }

    #[test]
    fn lint_route_serves_published_report() {
        let ep = endpoint();
        let r = ep.handle(&request("GET /lint HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 503, "no report yet: {}", r.body);
        assert!(r.body.contains("no lint report"), "{}", r.body);
        ep.set_lint_report("{\"files\":4,\"errors\":2}", 2);
        let r = ep.handle(&request("GET /lint HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{\"files\":4,\"errors\":2}");
        assert_eq!(ep.lint_errors(), 2);
        let r = ep.handle(&request("GET /readyz HTTP/1.1\r\n\r\n"));
        assert!(r.body.contains("\"lint_errors\":2"), "{}", r.body);
        let r = ep.handle(&request("GET /stats HTTP/1.1\r\n\r\n"));
        assert!(r.body.contains("\"lint_errors\":2"), "{}", r.body);
        assert!(ep
            .registry()
            .render_prometheus()
            .contains("provbench_lint_errors 2"));
    }

    #[test]
    fn graph_swap_keeps_inflight_requests_consistent() {
        let ep = endpoint();
        // A handler holds its Arc across a concurrent swap.
        let old = ep.graph();
        let (g, _) = parse_turtle("@prefix e: <http://e/> . e:a e:b e:c .").unwrap();
        ep.replace_graph(g, "swap");
        assert_eq!(old.len(), 2, "old readers keep the old graph");
        assert_eq!(ep.graph().len(), 1, "new readers see the new graph");
    }

    /// A panicking handler must not kill its worker: the client gets a
    /// 500, `panics_total` increments, and the same worker then serves
    /// the next request normally.
    #[test]
    fn worker_survives_handler_panic() {
        let (g, _) = parse_turtle("@prefix e: <http://e/> . e:a e:b e:c .").unwrap();
        let ep = Endpoint::with_config(
            g,
            ServerConfig::new()
                .workers(1)
                .debug_panic_route(true)
                .registry(Arc::new(Registry::new())),
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ep.clone();
        std::thread::spawn(move || {
            let _ = server.serve_on(listener);
        });

        let fetch = |path: &str| {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response
        };

        let r = fetch("/debug/panic");
        assert!(r.starts_with("HTTP/1.1 500"), "{r}");
        // Same (only) worker keeps serving.
        let r = fetch("/stats");
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");
        assert!(r.contains("\"panics_total\":1"), "{r}");
        assert_eq!(ep.panics_total(), 1);
        // And another panic keeps counting.
        let r = fetch("/debug/panic");
        assert!(r.starts_with("HTTP/1.1 500"), "{r}");
        assert!(fetch("/readyz").starts_with("HTTP/1.1 200"));
        assert_eq!(ep.panics_total(), 2);
        // /stats and /metrics agree on the count.
        assert!(ep
            .registry()
            .render_prometheus()
            .contains("provbench_panics_total 2"));
    }

    #[test]
    fn debug_panic_route_is_404_when_disabled() {
        let ep = endpoint();
        let r = ep.handle(&request("GET /debug/panic HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 404);
    }

    /// One metric sample's value from a rendered registry.
    fn sample(rendered: &str, needle: &str) -> u64 {
        rendered
            .lines()
            .find(|l| l.starts_with(needle))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    #[test]
    fn serve_conn_counts_every_connection_once() {
        use crate::net::BufConn;
        let ep = endpoint();
        let q = crate::http::url_encode("SELECT ?s WHERE { ?s ?p ?o }");

        let mut conn =
            BufConn::request(format!("GET /sparql?query={q} HTTP/1.1\r\nHost: t\r\n\r\n"));
        assert_eq!(ep.serve_conn(&mut conn), "ok");
        let text = String::from_utf8_lossy(conn.output());
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");

        // A malformed request is still a delivered (400) response.
        let mut conn = BufConn::request("NONSENSE\r\n\r\n");
        assert_eq!(ep.serve_conn(&mut conn), "ok");
        assert!(String::from_utf8_lossy(conn.output()).starts_with("HTTP/1.1 400"));

        let rendered = ep.registry().render_prometheus();
        assert_eq!(
            sample(&rendered, "provbench_connections_total{result=\"ok\"}"),
            2,
            "{rendered}"
        );
    }

    /// Satellite: a socket whose options cannot be set is closed and
    /// counted, never served with unbounded timeouts.
    #[test]
    fn socket_option_failure_closes_connection_and_counts() {
        use crate::net::Conn;

        struct BrokenSocket {
            wrote: bool,
        }
        impl std::io::Read for BrokenSocket {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Ok(0)
            }
        }
        impl std::io::Write for BrokenSocket {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.wrote = true;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        impl Conn for BrokenSocket {
            fn set_read_timeout(&mut self, _t: Option<Duration>) -> io::Result<()> {
                Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "setsockopt failed",
                ))
            }
            fn set_write_timeout(&mut self, _t: Option<Duration>) -> io::Result<()> {
                Ok(())
            }
        }
        let ep = endpoint();
        let mut conn = BrokenSocket { wrote: false };
        assert_eq!(ep.serve_conn(&mut conn), "socket_error");
        assert!(!conn.wrote, "an unbounded connection must not be served");
        let rendered = ep.registry().render_prometheus();
        assert_eq!(sample(&rendered, "provbench_socket_errors_total"), 1);
        assert_eq!(
            sample(
                &rendered,
                "provbench_connections_total{result=\"socket_error\"}"
            ),
            1
        );
        // No HTTP request was (or could be) recorded for it.
        assert!(
            !rendered.contains("provbench_http_requests_total{"),
            "{rendered}"
        );
    }

    /// Satellite: the Retry-After on 503s derives from queue depth /
    /// drain state unless configured explicitly.
    #[test]
    fn retry_after_is_derived_or_configured() {
        // Default 8 workers / 32 queued → ceil(32/8) = 4 s.
        let ep = endpoint();
        assert_eq!(ep.retry_after_secs(), 4);
        // A 1-worker, 1-slot pool keeps the old hint of 1 s.
        let ep = endpoint_with(ServerConfig::new().workers(1).queue_depth(1));
        assert_eq!(ep.retry_after_secs(), 1);
        // Explicit configuration wins.
        let ep = endpoint_with(ServerConfig::new().retry_after(Duration::from_secs(7)));
        assert_eq!(ep.retry_after_secs(), 7);
        // Draining advertises the drain deadline: by then this process
        // is gone and the retry lands on a healthy peer.
        let ep = endpoint_with(ServerConfig::new().drain_deadline(Duration::from_secs(9)));
        ep.health.draining.store(true, Ordering::SeqCst);
        assert_eq!(ep.retry_after_secs(), 9);
        // And the derived value reaches the wire on an unready 503.
        let ep = Endpoint::unready(ServerConfig::new().registry(Arc::new(Registry::new())));
        let r = ep.handle(&request("GET /readyz HTTP/1.1\r\n\r\n"));
        assert!(
            r.headers.contains(&("Retry-After".into(), "4".into())),
            "{:?}",
            r.headers
        );
    }

    /// While draining, probes and metrics keep answering but new
    /// queries are refused with a drain-scented 503.
    #[test]
    fn draining_refuses_queries_but_keeps_probes() {
        let ep = endpoint();
        ep.health.draining.store(true, Ordering::SeqCst);
        let r = ep.handle(&request("GET /readyz HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 503);
        assert!(r.body.contains("\"draining\":true"), "{}", r.body);
        let q = crate::http::url_encode("SELECT ?s WHERE { ?s ?p ?o }");
        let r = ep.handle(&request(&format!("GET /sparql?query={q} HTTP/1.1\r\n\r\n")));
        assert_eq!(r.status, 503);
        assert!(r.body.contains("\"error\":\"draining\""), "{}", r.body);
        assert!(ep.handle(&request("GET /healthz HTTP/1.1\r\n\r\n")).status == 200);
        assert!(ep.handle(&request("GET /metrics HTTP/1.1\r\n\r\n")).status == 200);
    }

    /// Satellite: a slowloris client dribbling header bytes gets a 408
    /// within the read-timeout budget — the total-deadline reader, not
    /// the per-read socket timeout, is what bounds it.
    #[test]
    fn slowloris_dribbler_gets_408_within_budget() {
        let ep = endpoint_with(ServerConfig::new().read_timeout(Duration::from_millis(300)));
        let registry = Arc::clone(ep.registry());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = ep.clone();
        std::thread::spawn(move || {
            let _ = server.serve_on(listener);
        });

        let start = Instant::now();
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let dribbler = std::thread::spawn(move || {
            // One byte per 40 ms: each read succeeds well inside a
            // per-read timeout, but the total budget runs out.
            for b in b"GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n" {
                if writer.write_all(&[*b]).is_err() {
                    break; // server gave up on us, as it should
                }
                std::thread::sleep(Duration::from_millis(40));
            }
        });
        let mut response = String::new();
        let mut reader = stream;
        reader.read_to_string(&mut response).unwrap();
        dribbler.join().unwrap();

        assert!(response.starts_with("HTTP/1.1 408"), "{response}");
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "408 took {:?}",
            start.elapsed()
        );
        let rendered = registry.render_prometheus();
        assert_eq!(
            sample(
                &rendered,
                "provbench_connections_total{result=\"read_timeout\"}"
            ),
            1,
            "{rendered}"
        );
        let requests = rendered
            .lines()
            .find(|l| {
                l.starts_with("provbench_http_requests_total{") && l.contains("status=\"408\"")
            })
            .unwrap_or_else(|| panic!("no status=\"408\" sample in\n{rendered}"));
        assert!(requests.ends_with(" 1"), "{requests}");
    }

    /// Tentpole: a shutdown request drains in-flight work — the slow
    /// query completes, probes observe `draining`, the serve call
    /// returns cleanly, and the drain duration lands on the registry.
    #[test]
    fn graceful_shutdown_drains_inflight_requests() {
        let mut turtle = String::from("@prefix e: <http://e/> .\n");
        for i in 0..80 {
            turtle.push_str(&format!("e:s{i} e:p{} e:o{i} .\n", i % 7));
        }
        let (g, _) = parse_turtle(&turtle).unwrap();
        let registry = Arc::new(Registry::new());
        let ep = Endpoint::with_config(
            g,
            ServerConfig::new()
                .workers(2)
                .drain_deadline(Duration::from_secs(60))
                .registry(Arc::clone(&registry)),
        );
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = ShutdownSignal::new();
        let signal = shutdown.clone();
        let server = ep.clone();
        let serving = std::thread::spawn(move || server.serve_with_shutdown(listener, &signal));

        // Occupy a worker with a query slow enough to outlive the
        // shutdown request.
        let slow = crate::http::url_encode(
            "SELECT (COUNT(*) AS ?n) WHERE { ?a ?b ?c . ?d ?e ?f . ?g ?h ?i }",
        );
        let inflight = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(
                stream,
                "GET /sparql?query={slow} HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            .unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response
        });
        std::thread::sleep(Duration::from_millis(100));

        shutdown.request();
        std::thread::sleep(Duration::from_millis(20));
        // A probe during the drain sees the draining state (the
        // acceptor keeps serving probes while in-flight work finishes).
        let mut probe = TcpStream::connect(addr).unwrap();
        write!(probe, "GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut readyz = String::new();
        probe.read_to_string(&mut readyz).unwrap();
        assert!(readyz.starts_with("HTTP/1.1 503"), "{readyz}");
        assert!(readyz.contains("\"draining\":true"), "{readyz}");

        // The in-flight query still completes, byte-complete.
        let response = inflight.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
        assert!(
            response.contains(&format!("Content-Length: {}\r\n", body.len())),
            "{response}"
        );
        // And the serve loop returns cleanly (the process may exit 0).
        serving.join().unwrap().unwrap();
        let rendered = registry.render_prometheus();
        assert_eq!(
            sample(&rendered, "provbench_shutdown_drain_seconds_count"),
            1,
            "{rendered}"
        );
    }
}
