//! The endpoint itself: route dispatch and the serving loop.

use crate::http::{parse_request, Request, Response};
use crate::results::{solutions_to_json, solutions_to_tsv};
use provbench_query::execute_query;
use provbench_rdf::Graph;
use std::io;
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;

/// A SPARQL endpoint over one corpus graph.
#[derive(Clone)]
pub struct Endpoint {
    graph: Arc<Graph>,
}

impl Endpoint {
    /// An endpoint serving the given graph.
    pub fn new(graph: Graph) -> Self {
        Endpoint {
            graph: Arc::new(graph),
        }
    }

    /// Handle one parsed request (exposed for tests).
    pub fn handle(&self, request: &Request) -> Response {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/") => Response::ok("text/html", self.index_page()),
            ("GET", "/sparql") | ("POST", "/sparql") => self.sparql(request),
            ("GET", "/stats") => Response::ok(
                "application/json",
                format!(
                    "{{\"triples\":{},\"terms\":{}}}",
                    self.graph.len(),
                    self.graph.term_count()
                ),
            ),
            _ => Response::not_found(),
        }
    }

    fn sparql(&self, request: &Request) -> Response {
        // SPARQL protocol: GET ?query=… or POST with a form-encoded or
        // raw query body.
        let query = request.param("query").map(str::to_owned).or_else(|| {
            if request.method == "POST" {
                let body = request.body.trim();
                if let Some(rest) = body.strip_prefix("query=") {
                    Some(crate::http::url_decode(rest))
                } else if !body.is_empty() {
                    Some(body.to_owned())
                } else {
                    None
                }
            } else {
                None
            }
        });
        let Some(query) = query else {
            return Response::bad_request("missing `query` parameter");
        };
        match execute_query(&self.graph, &query) {
            Ok(solutions) => {
                let want_tsv = request.param("format") == Some("tsv")
                    || request.accepts("text/tab-separated-values");
                if want_tsv {
                    Response::ok("text/tab-separated-values", solutions_to_tsv(&solutions))
                } else {
                    Response::ok(
                        "application/sparql-results+json",
                        solutions_to_json(&solutions),
                    )
                }
            }
            Err(e) => Response::bad_request(format!("query error: {e}")),
        }
    }

    fn index_page(&self) -> String {
        format!(
            r#"<!doctype html>
<html><head><title>ProvBench SPARQL endpoint</title></head>
<body>
<h1>ProvBench corpus SPARQL endpoint</h1>
<p>{} triples loaded. POST or GET <code>/sparql</code> with a
<code>query</code> parameter; results are SPARQL JSON
(<code>?format=tsv</code> for text).</p>
<form method="get" action="/sparql">
<textarea name="query" rows="10" cols="80">
PREFIX prov: &lt;http://www.w3.org/ns/prov#&gt;
PREFIX wfprov: &lt;http://purl.org/wf4ever/wfprov#&gt;
SELECT ?run ?start WHERE {{
  ?run a wfprov:WorkflowRun .
  OPTIONAL {{ ?run prov:startedAtTime ?start }}
}} LIMIT 10
</textarea><br>
<input type="hidden" name="format" value="tsv">
<input type="submit" value="Run query">
</form>
</body></html>"#,
            self.graph.len()
        )
    }

    /// Serve forever on the given address (one thread per connection).
    pub fn serve(&self, addr: impl ToSocketAddrs) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        self.serve_on(listener)
    }

    /// Serve forever on an existing listener.
    pub fn serve_on(&self, listener: TcpListener) -> io::Result<()> {
        for stream in listener.incoming() {
            let mut stream = stream?;
            let endpoint = self.clone();
            std::thread::spawn(move || {
                if let Ok(request) = parse_request(&mut stream) {
                    let response = endpoint.handle(&request);
                    let _ = response.write_to(&mut stream);
                }
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_rdf::parse_turtle;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn endpoint() -> Endpoint {
        let (g, _) = parse_turtle(
            r#"@prefix wfprov: <http://purl.org/wf4ever/wfprov#> .
               @prefix e: <http://e/> .
               e:r1 a wfprov:WorkflowRun . e:r2 a wfprov:WorkflowRun ."#,
        )
        .unwrap();
        Endpoint::new(g)
    }

    fn request(raw: &str) -> Request {
        parse_request(&mut raw.as_bytes()).unwrap()
    }

    #[test]
    fn index_and_stats() {
        let ep = endpoint();
        let r = ep.handle(&request("GET / HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 200);
        assert!(r.body.contains("SPARQL endpoint"));
        let r = ep.handle(&request("GET /stats HTTP/1.1\r\n\r\n"));
        assert!(r.body.contains("\"triples\":2"));
        let r = ep.handle(&request("GET /nope HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 404);
    }

    #[test]
    fn get_query_json() {
        let ep = endpoint();
        let q = crate::http::url_encode(
            "PREFIX wfprov: <http://purl.org/wf4ever/wfprov#> SELECT ?r WHERE { ?r a wfprov:WorkflowRun }",
        );
        let r = ep.handle(&request(&format!("GET /sparql?query={q} HTTP/1.1\r\n\r\n")));
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(r.content_type, "application/sparql-results+json");
        assert!(r.body.contains("http://e/r1"));
    }

    #[test]
    fn post_raw_query_tsv() {
        let ep = endpoint();
        let body = "PREFIX wfprov: <http://purl.org/wf4ever/wfprov#> SELECT ?r WHERE { ?r a wfprov:WorkflowRun } ORDER BY ?r";
        let raw = format!(
            "POST /sparql?format=tsv HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let r = ep.handle(&request(&raw));
        assert_eq!(r.status, 200);
        assert_eq!(r.body.lines().count(), 3);
    }

    #[test]
    fn bad_query_is_400() {
        let ep = endpoint();
        let r = ep.handle(&request("GET /sparql?query=NOT+SPARQL HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 400);
        let r = ep.handle(&request("GET /sparql HTTP/1.1\r\n\r\n"));
        assert_eq!(r.status, 400);
    }

    #[test]
    fn serves_concurrent_clients() {
        let ep = endpoint();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = ep.serve_on(listener);
        });
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    write!(stream, "GET /stats HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
                    let mut response = String::new();
                    stream.read_to_string(&mut response).unwrap();
                    assert!(response.contains("\"triples\":2"), "{response}");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn serves_over_real_tcp() {
        let ep = endpoint();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = ep.serve_on(listener);
        });

        let mut stream = TcpStream::connect(addr).unwrap();
        let q = crate::http::url_encode(
            "SELECT ?r WHERE { ?r a <http://purl.org/wf4ever/wfprov#WorkflowRun> }",
        );
        write!(stream, "GET /sparql?query={q} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("http://e/r2"));
    }
}
