//! Serve a generated corpus over HTTP.
//!
//! ```sh
//! cargo run -p provbench-endpoint --release --bin endpoint -- --addr 127.0.0.1:3030
//! curl 'http://127.0.0.1:3030/sparql?format=tsv&query=SELECT+%3Fr+WHERE+%7B+%3Fr+a+%3Chttp%3A%2F%2Fpurl.org%2Fwf4ever%2Fwfprov%23WorkflowRun%3E+%7D+LIMIT+3'
//! ```

use provbench_core::{Corpus, CorpusSpec};
use provbench_endpoint::{Endpoint, ServerConfig};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:3030".to_owned();
    let mut workflows: Option<usize> = Some(40);
    let mut workers = 8usize;
    let mut queue_depth = 32usize;
    let mut timeout = Duration::from_secs(10);
    let mut it = std::env::args().skip(1);
    let usage = "use --addr HOST:PORT, --full, --workers N, --queue-depth N, --timeout-ms N";
    let parse_num = |v: Option<String>, what: &str| -> usize {
        v.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{what} needs a number");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().unwrap_or(addr),
            "--full" => workflows = None,
            "--workers" => workers = parse_num(it.next(), "--workers"),
            "--queue-depth" => queue_depth = parse_num(it.next(), "--queue-depth"),
            "--timeout-ms" => {
                timeout = Duration::from_millis(parse_num(it.next(), "--timeout-ms") as u64)
            }
            other => {
                eprintln!("unknown option {other:?} ({usage})");
                std::process::exit(2);
            }
        }
    }

    let spec = match workflows {
        Some(n) => CorpusSpec {
            max_workflows: Some(n),
            total_runs: n + n / 2,
            failed_runs: n / 10,
            ..CorpusSpec::default()
        },
        None => CorpusSpec::default(),
    };
    eprintln!("generating corpus…");
    let corpus = Corpus::generate(&spec);
    let graph = corpus.combined_graph();
    eprintln!(
        "serving {} triples on http://{addr}/ ({workers} workers, {timeout:?} timeout; Ctrl-C to stop)",
        graph.len(),
    );
    let config = ServerConfig::new()
        .workers(workers)
        .queue_depth(queue_depth)
        .timeout(timeout)
        .source("generated corpus");
    Endpoint::with_config(graph, config)
        .serve(&addr)
        .expect("serve");
}
