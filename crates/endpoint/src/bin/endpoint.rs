//! Serve a generated corpus over HTTP.
//!
//! ```sh
//! cargo run -p provbench-endpoint --release --bin endpoint -- --addr 127.0.0.1:3030
//! curl 'http://127.0.0.1:3030/sparql?format=tsv&query=SELECT+%3Fr+WHERE+%7B+%3Fr+a+%3Chttp%3A%2F%2Fpurl.org%2Fwf4ever%2Fwfprov%23WorkflowRun%3E+%7D+LIMIT+3'
//! ```

use provbench_core::{Corpus, CorpusSpec};
use provbench_endpoint::Endpoint;

fn main() {
    let mut addr = "127.0.0.1:3030".to_owned();
    let mut workflows: Option<usize> = Some(40);
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().unwrap_or(addr),
            "--full" => workflows = None,
            other => {
                eprintln!("unknown option {other:?} (use --addr HOST:PORT, --full)");
                std::process::exit(2);
            }
        }
    }

    let spec = match workflows {
        Some(n) => CorpusSpec {
            max_workflows: Some(n),
            total_runs: n + n / 2,
            failed_runs: n / 10,
            ..CorpusSpec::default()
        },
        None => CorpusSpec::default(),
    };
    eprintln!("generating corpus…");
    let corpus = Corpus::generate(&spec);
    let graph = corpus.combined_graph();
    eprintln!(
        "serving {} triples on http://{addr}/ (Ctrl-C to stop)",
        graph.len()
    );
    Endpoint::new(graph).serve(&addr).expect("serve");
}
