//! The engine facade: execute a template and publish its provenance in
//! one call, like running Wings with the OPMW publisher enabled.

use crate::export::{export_run, template_description};
use provbench_rdf::{Dataset, Graph};
use provbench_workflow::execution::execute;
use provbench_workflow::{ExecutionConfig, WorkflowRun, WorkflowTemplate};

/// A simulated Wings installation.
#[derive(Clone, Debug)]
pub struct WingsEngine {
    /// Engine version, embedded in the engine agent IRI.
    pub version: String,
}

impl Default for WingsEngine {
    fn default() -> Self {
        WingsEngine {
            version: "4.0".to_owned(),
        }
    }
}

impl WingsEngine {
    /// A specific engine version.
    pub fn new(version: impl Into<String>) -> Self {
        WingsEngine {
            version: version.into(),
        }
    }

    /// Execute `template` and publish the run's provenance dataset.
    pub fn run(
        &self,
        template: &WorkflowTemplate,
        config: &ExecutionConfig,
        run_id: &str,
    ) -> (WorkflowRun, Dataset) {
        let run = execute(template, config);
        let dataset = export_run(template, &run, run_id, &self.version);
        (run, dataset)
    }

    /// The OPMW description of a template (shared across its runs).
    pub fn describe(&self, template: &WorkflowTemplate) -> Graph {
        template_description(template)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_workflow::domains::example_template;

    #[test]
    fn run_produces_dataset_and_run_record() {
        let engine = WingsEngine::default();
        let t = example_template();
        let config = ExecutionConfig::new(0, 1, "erin");
        let (run, ds) = engine.run(&t, &config, "r1");
        assert!(!run.failed());
        assert!(!ds.is_empty());
        assert_eq!(ds.named_graphs().count(), 1);
        assert!(!engine.describe(&t).is_empty());
    }

    #[test]
    fn version_flows_into_agent_iri() {
        let engine = WingsEngine::new("4.2");
        let t = example_template();
        let config = ExecutionConfig::new(0, 1, "erin");
        let (_, ds) = engine.run(&t, &config, "r1");
        let agent = crate::vocab::engine_iri("4.2");
        assert!(ds
            .union_graph()
            .triples_matching(Some(&agent.into()), None, None)
            .next()
            .is_some());
    }
}
