//! Wings-deployment IRI helpers.

use provbench_rdf::Iri;

/// The Wings engine software-agent IRI for a version.
pub fn engine_iri(version: &str) -> Iri {
    Iri::new_unchecked(format!(
        "http://www.wings-workflows.org/system/wings-{version}"
    ))
}

/// A user agent IRI in the OPMW export space.
pub fn user_iri(user: &str) -> Iri {
    Iri::new_unchecked(format!("http://www.opmw.org/export/resource/Agent/{user}"))
}

/// The data-library location of an artifact.
pub fn data_location(run_id: &str, artifact: usize) -> Iri {
    Iri::new_unchecked(format!(
        "http://www.wings-workflows.org/data/{run_id}/file_{artifact}.dat"
    ))
}

/// The catalog dataset a workflow input was staged from.
pub fn catalog_source(name: &str) -> Iri {
    Iri::new_unchecked(format!(
        "http://www.wings-workflows.org/catalog/dataset/{name}"
    ))
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_build_valid_iris() {
        assert!(super::engine_iri("4.0").as_str().contains("wings-4.0"));
        assert!(super::user_iri("dana").as_str().ends_with("/dana"));
        assert!(super::data_location("r1", 3).as_str().contains("file_3"));
        assert!(super::catalog_source("corpus")
            .as_str()
            .contains("dataset/corpus"));
    }
}
