//! # provbench-wings
//!
//! A Wings-style workflow engine simulator with an OPMW/PROV publisher
//! (the stand-in for the Wings provenance export, see DESIGN.md §2).
//!
//! The exporter reproduces the PROV term profile the paper reports for
//! Wings in Tables 2 and 3:
//!
//! * **asserted**: `prov:Entity`/`Activity`/`Agent` typing, `prov:used`,
//!   `prov:wasGeneratedBy`, `prov:wasAssociatedWith`,
//!   `prov:wasAttributedTo` (accounts and artifacts are attributed to the
//!   user), `prov:Bundle` (each run account is a bundle / TriG named
//!   graph), `prov:Plan` (the template is typed directly),
//!   `prov:wasInfluencedBy` (explicit influence statements),
//!   `prov:hadPrimarySource` (workflow inputs point at catalog datasets),
//!   `prov:atLocation` (artifacts and templates carry locations);
//! * **never asserted**: `prov:startedAtTime`/`endedAtTime` ("activity
//!   start and end not recorded in Wings provenance traces" — run-level
//!   times live on the account as `opmw:overallStartTime`/`EndTime`),
//!   `prov:wasInformedBy`, `prov:actedOnBehalfOf`, `prov:wasDerivedFrom`,
//!   `prov:hadPlan`.
//!
//! Executed steps carry `opmw:hasExecutableComponent` — the services the
//! paper's Q6 retrieves ("only available in Wings provenance logs").

pub mod engine;
pub mod export;
pub mod vocab;

pub use engine::WingsEngine;
pub use export::{account_iri, export_run, template_description, template_iri};
