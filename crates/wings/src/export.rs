//! The OPMW/PROV publisher: [`WorkflowRun`] → PROV-O dataset (the run
//! account as a `prov:Bundle` named graph), Wings profile.

use crate::vocab as wings;
use provbench_prov::builder::DocumentBuilder;
use provbench_prov::model::{AgentKind, Document};
use provbench_prov::to_rdf::{document_to_dataset, ProfileOptions};
use provbench_rdf::{Dataset, DateTime, Graph, Iri, Literal, Triple};
use provbench_vocab::{self as vocab, dcterms, opmw, rdfs};
use provbench_workflow::{ProcessStatus, RunStatus, WorkflowRun, WorkflowTemplate};

/// The execution-account IRI for a run.
pub fn account_iri(run_id: &str) -> Iri {
    Iri::new_unchecked(format!(
        "http://www.opmw.org/export/resource/Account/{run_id}"
    ))
}

/// The OPMW template IRI for a workflow.
pub fn template_iri(template_name: &str) -> Iri {
    Iri::new_unchecked(format!(
        "http://www.opmw.org/export/resource/WorkflowTemplate/{template_name}"
    ))
}

fn template_process_iri(template_name: &str, process_name: &str) -> Iri {
    Iri::new_unchecked(format!(
        "http://www.opmw.org/export/resource/WorkflowTemplateProcess/{template_name}_{process_name}"
    ))
}

fn base(run_id: &str) -> String {
    format!("http://www.opmw.org/export/resource/Execution/{run_id}/")
}

/// The OPMW description of a template (shared by all of its runs).
pub fn template_description(template: &WorkflowTemplate) -> Graph {
    let mut g = Graph::new();
    let wf = template_iri(&template.name);
    g.insert(Triple::new(
        wf.clone(),
        vocab::rdf_type(),
        opmw::workflow_template(),
    ));
    g.insert(Triple::new(
        wf.clone(),
        rdfs::label(),
        Literal::simple(&template.title),
    ));
    g.insert(Triple::new(
        wf.clone(),
        dcterms::subject(),
        Literal::simple(&template.domain),
    ));
    g.insert(Triple::new(
        wf.clone(),
        vocab::prov::at_location(),
        Iri::new_unchecked(format!(
            "http://www.wings-workflows.org/templates/{}.owl",
            template.name
        )),
    ));
    for proc in &template.processors {
        let p = template_process_iri(&template.name, &proc.name);
        g.insert(Triple::new(
            p.clone(),
            vocab::rdf_type(),
            opmw::workflow_template_process(),
        ));
        g.insert(Triple::new(
            p.clone(),
            rdfs::label(),
            Literal::simple(&proc.name),
        ));
        g.insert(Triple::new(
            p.clone(),
            opmw::corresponds_to_template(),
            wf.clone(),
        ));
    }
    g
}

/// Export one run as a Wings-profile PROV-O dataset: account metadata in
/// the default graph, the trace inside the account's bundle graph.
pub fn export_run(
    template: &WorkflowTemplate,
    run: &WorkflowRun,
    run_id: &str,
    engine_version: &str,
) -> Dataset {
    let account = account_iri(run_id);
    let wf = template_iri(&template.name);
    let engine = wings::engine_iri(engine_version);
    let user = wings::user_iri(&run.user);

    // --- Account-level (default graph) metadata ------------------------
    let mut top = DocumentBuilder::new(base(run_id));
    {
        let acct = top
            .entity_iri(account.clone())
            .typed(opmw::workflow_execution_account())
            .label(format!("Execution account of {}", template.title))
            .id();
        top.agent_iri(user.clone(), AgentKind::Person)
            .name(run.user.clone());
        top.agent_iri(engine.clone(), AgentKind::Software)
            .name(format!("Wings {engine_version}"));
        // Wings records run times only at account granularity, with OPMW
        // terms — never prov:startedAtTime/endedAtTime (Table 2).
        top.other(
            &acct,
            opmw::overall_start_time(),
            Literal::date_time(&DateTime::from_unix_millis(run.started_ms)),
        );
        top.other(
            &acct,
            opmw::overall_end_time(),
            Literal::date_time(&DateTime::from_unix_millis(run.ended_ms)),
        );
        let status = match run.status {
            RunStatus::Success => "SUCCESS",
            RunStatus::Failed(_) => "FAILURE",
        };
        top.other(&acct, opmw::has_status(), Literal::simple(status));
        top.other(&acct, opmw::executed_in_workflow_system(), engine.clone());
        top.other(&acct, opmw::corresponds_to_template(), wf.clone());
        // Q5: who executed this run — the account is attributed directly.
        top.attributed(&acct, &user);
    }

    // --- The trace, inside the bundle ----------------------------------
    let mut b = DocumentBuilder::new(base(run_id));
    let template_entity = b
        .entity_iri(wf.clone())
        .typed(opmw::workflow_template())
        .location(Iri::new_unchecked(format!(
            "http://www.wings-workflows.org/templates/{}.owl",
            template.name
        )))
        .id();
    let engine_b = b
        .agent_iri(engine.clone(), AgentKind::Software)
        .name(format!("Wings {engine_version}"))
        .id();
    let user_b = b
        .agent_iri(user.clone(), AgentKind::Person)
        .name(run.user.clone())
        .id();

    // Artifacts.
    let artifact_iri: Vec<Iri> = run
        .artifacts
        .iter()
        .map(|a| {
            b.entity(&format!("artifact/{}", a.id))
                .typed(opmw::workflow_execution_artifact())
                .label(a.name.clone())
                .value(Literal::simple(&a.value))
                .location(wings::data_location(run_id, a.id))
                .id()
        })
        .collect();
    for (iri, a) in artifact_iri.iter().zip(&run.artifacts) {
        b.other(iri, opmw::belongs_to_account(), account.clone());
        b.attributed(iri, &user_b);
        let _ = a;
    }

    // Workflow inputs were staged from the Wings data catalog — their
    // primary sources are catalog datasets (Table 3: hadPrimarySource).
    for &aid in &run.inputs {
        let source = b
            .entity_iri(wings::catalog_source(&run.artifacts[aid].name))
            .location(Iri::new_unchecked("http://www.wings-workflows.org/catalog"))
            .id();
        b.primary_source(&artifact_iri[aid], &source);
        b.other(&artifact_iri[aid], opmw::is_input_of(), account.clone());
    }
    for &aid in &run.outputs {
        b.other(&artifact_iri[aid], opmw::is_output_of(), account.clone());
    }

    // Executed steps. Wings records no per-activity times; failed steps
    // carry a FAILURE status and a log comment; skipped steps are absent.
    for process in &run.processes {
        if process.status == ProcessStatus::Skipped {
            continue;
        }
        let mut ab = b
            .activity(&format!("process/{}", process.name))
            .typed(opmw::workflow_execution_process())
            .label(process.name.clone());
        match process.status {
            ProcessStatus::Failed(kind) => {
                ab = ab
                    .attribute(opmw::has_status(), Literal::simple("FAILURE"))
                    .attribute(rdfs::comment(), Literal::simple(kind.description()));
            }
            _ => {
                ab = ab.attribute(opmw::has_status(), Literal::simple("SUCCESS"));
            }
        }
        let p_iri = ab.id();
        b.other(&p_iri, opmw::belongs_to_account(), account.clone());
        b.other(
            &p_iri,
            opmw::corresponds_to_template_process(),
            template_process_iri(&template.name, &process.name),
        );
        // Q6: the concrete component/service this step invoked.
        if let Some(service) = &process.service {
            b.other(
                &p_iri,
                opmw::has_executable_component(),
                Iri::new_unchecked(service.clone()),
            );
        }
        // Association with the engine, with the template as a typed plan.
        b.associated(&p_iri, &engine_b, Some(&template_entity));
        for &aid in &process.inputs {
            b.used(&p_iri, &artifact_iri[aid], None);
            // Wings asserts explicit influence alongside its subproperties
            // (Table 3: wasInfluencedBy unstarred for Wings).
            b.influenced(&p_iri, &artifact_iri[aid]);
        }
        for &aid in &process.outputs {
            b.generated(&artifact_iri[aid], &p_iri, None);
            b.influenced(&artifact_iri[aid], &p_iri);
        }
    }

    let mut doc: Document = top.build();
    doc.bundles.push((account, b.build()));
    document_to_dataset(&doc, ProfileOptions::wings())
}

#[cfg(test)]
mod tests {
    use super::*;
    use provbench_prov::inference::{any_instance_of, any_use_of};
    use provbench_vocab::prov;
    use provbench_workflow::domains::example_template;
    use provbench_workflow::execution::{execute, ExecutionConfig, FailureKind, FailureSpec};

    fn run_dataset(failure: Option<FailureSpec>) -> Dataset {
        let t = example_template();
        let mut c = ExecutionConfig::new(1_358_245_800_000, 9, "dana");
        c.failure = failure;
        let run = execute(&t, &c);
        export_run(&t, &run, "example-1", "4.0")
    }

    #[test]
    fn account_is_a_bundle_named_graph() {
        let ds = run_dataset(None);
        let account = account_iri("example-1");
        assert!(ds.named_graph(&account.clone().into()).is_some());
        assert!(any_instance_of(ds.default_graph(), &prov::bundle()));
    }

    #[test]
    fn asserts_the_wings_profile() {
        let ds = run_dataset(None);
        let union = ds.union_graph();
        for class in [
            prov::entity(),
            prov::activity(),
            prov::agent(),
            prov::plan(),
            prov::bundle(),
        ] {
            assert!(any_instance_of(&union, &class), "missing class {class:?}");
        }
        for p in [
            prov::used(),
            prov::was_generated_by(),
            prov::was_associated_with(),
            prov::was_attributed_to(),
            prov::was_influenced_by(),
            prov::had_primary_source(),
            prov::at_location(),
        ] {
            assert!(any_use_of(&union, &p), "missing property {p:?}");
        }
    }

    #[test]
    fn never_asserts_the_excluded_terms() {
        let ds = run_dataset(None);
        let union = ds.union_graph();
        for p in [
            prov::started_at_time(),
            prov::ended_at_time(),
            prov::was_informed_by(),
            prov::acted_on_behalf_of(),
            prov::was_derived_from(),
            prov::had_plan(),
        ] {
            assert!(!any_use_of(&union, &p), "Wings must not assert {p:?}");
        }
    }

    #[test]
    fn services_are_recorded_for_q6() {
        let ds = run_dataset(None);
        let union = ds.union_graph();
        assert_eq!(
            union
                .triples_matching(None, Some(&opmw::has_executable_component()), None)
                .count(),
            3
        );
    }

    #[test]
    fn account_times_use_opmw_terms() {
        let ds = run_dataset(None);
        let g = ds.default_graph();
        assert!(any_use_of(g, &opmw::overall_start_time()));
        assert!(any_use_of(g, &opmw::overall_end_time()));
    }

    #[test]
    fn failure_is_visible_in_status() {
        let ds = run_dataset(Some(FailureSpec {
            processor: 0,
            kind: FailureKind::Timeout,
        }));
        let failure_status: provbench_rdf::Term = Literal::simple("FAILURE").into();
        assert!(ds
            .default_graph()
            .triples_matching(None, Some(&opmw::has_status()), Some(&failure_status))
            .next()
            .is_some());
        // Only the failed step is in the bundle (downstream skipped).
        let union = ds.union_graph();
        assert_eq!(
            union
                .triples_matching(
                    None,
                    Some(&vocab::rdf_type()),
                    Some(&opmw::workflow_execution_process().into())
                )
                .count(),
            1
        );
    }

    #[test]
    fn every_failure_kind_is_recorded_with_its_cause() {
        let t = example_template();
        for (i, kind) in FailureKind::ALL.into_iter().enumerate() {
            let mut c = ExecutionConfig::new(0, 9, "dana");
            c.failure = Some(FailureSpec {
                processor: i % t.processors.len(),
                kind,
            });
            let run = execute(&t, &c);
            let ds = export_run(&t, &run, &format!("fk-{i}"), "4.0");
            let union = ds.union_graph();
            let msg: provbench_rdf::Term = Literal::simple(kind.description()).into();
            assert!(
                union
                    .triples_matching(None, Some(&provbench_vocab::rdfs::comment()), Some(&msg))
                    .next()
                    .is_some(),
                "cause {kind:?} not recorded"
            );
        }
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(run_dataset(None), run_dataset(None));
    }

    #[test]
    fn template_description_is_opmw() {
        let g = template_description(&example_template());
        assert!(any_instance_of(&g, &opmw::workflow_template()));
        assert!(any_instance_of(&g, &opmw::workflow_template_process()));
        assert!(any_use_of(&g, &prov::at_location()));
    }

    #[test]
    fn inputs_have_primary_sources() {
        let ds = run_dataset(None);
        let union = ds.union_graph();
        assert_eq!(
            union
                .triples_matching(None, Some(&prov::had_primary_source()), None)
                .count(),
            1
        );
        assert!(any_use_of(&union, &opmw::is_input_of()));
        assert!(any_use_of(&union, &opmw::is_output_of()));
    }
}
