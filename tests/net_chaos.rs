//! Deterministic network fault-injection ("net chaos") suite for the
//! SPARQL endpoint's serving loop.
//!
//! Gated behind the `fault-inject` feature:
//!
//! ```text
//! cargo test --features fault-inject --test net_chaos
//! ```
//!
//! The harness measures how many connection operations (timeout
//! setters, reads, writes) one clean request/response exchange
//! performs, then replays the exchange once per (fault kind ×
//! operation index) pair, injecting exactly one fault at that point. A
//! seeded pseudo-random schedule tops the sweep up past 200 injected
//! fault points. After every faulted exchange, three invariants must
//! hold and nothing may panic:
//!
//! 1. every `serve_conn` call counts exactly one connection outcome in
//!    `provbench_connections_total` — the one it returns — and at most
//!    one HTTP request: a response or a counted error, never silence,
//!    never double-counting;
//! 2. an exchange with no injected fault is byte-identical to the
//!    fault-free baseline;
//! 3. an `"ok"` outcome always delivered a complete, well-formed
//!    response (intact header block, `Content-Length` matching the
//!    body), whatever faults fired along the way.

use provbench::endpoint::{BufConn, Endpoint, FaultConn, NetFaultKind, ServerConfig};
use provbench::obs::Registry;
use provbench::rdf::parse_turtle;
use std::collections::BTreeMap;
use std::sync::Arc;

const KINDS: [NetFaultKind; 4] = [
    NetFaultKind::ShortRead,
    NetFaultKind::ShortWrite,
    NetFaultKind::Reset,
    NetFaultKind::Stall,
];

/// The request shapes driven through every fault point: both SPARQL
/// protocol verbs, the probe and stats routes, the web form, and a
/// malformed request (whose baseline is a 400 — still a delivered
/// response).
fn request_shapes() -> Vec<(&'static str, Vec<u8>)> {
    let q1 = provbench::endpoint::url_encode("SELECT ?s WHERE { ?s ?p ?o } LIMIT 5");
    let q2 = "query=SELECT%20%3Fp%20WHERE%20%7B%20%3Fs%20%3Fp%20%3Fo%20%7D";
    vec![
        ("GET /", b"GET / HTTP/1.1\r\nHost: t\r\n\r\n".to_vec()),
        (
            "GET /readyz",
            b"GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
        ),
        (
            "GET /stats",
            b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n".to_vec(),
        ),
        (
            "GET /sparql",
            format!("GET /sparql?format=tsv&query={q1} HTTP/1.1\r\nHost: t\r\n\r\n").into_bytes(),
        ),
        (
            "POST /sparql",
            format!(
                "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{q2}",
                q2.len()
            )
            .into_bytes(),
        ),
        ("bad request", b"NONSENSE\r\n\r\n".to_vec()),
    ]
}

fn chaos_endpoint() -> Endpoint {
    let (g, _) = parse_turtle(
        r#"@prefix wfprov: <http://purl.org/wf4ever/wfprov#> .
           @prefix e: <http://e/> .
           e:r1 a wfprov:WorkflowRun . e:r2 a wfprov:WorkflowRun .
           e:p1 a wfprov:ProcessRun . e:p1 wfprov:wasPartOfWorkflowRun e:r1 ."#,
    )
    .unwrap();
    Endpoint::with_config(g, ServerConfig::new().registry(Arc::new(Registry::new())))
}

/// Snapshot of the metrics a faulted exchange may move: per-outcome
/// connection counts, the total request count, and the panic count.
fn snapshot(ep: &Endpoint) -> (BTreeMap<String, u64>, u64, u64) {
    let rendered = ep.registry().render_prometheus();
    let mut conns = BTreeMap::new();
    let mut requests = 0u64;
    let mut panics = 0u64;
    for line in rendered.lines() {
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let value: u64 = match value.parse() {
            Ok(v) => v,
            Err(_) => continue,
        };
        if let Some(label) = name
            .strip_prefix("provbench_connections_total{result=\"")
            .and_then(|r| r.strip_suffix("\"}"))
        {
            conns.insert(label.to_owned(), value);
        } else if name.starts_with("provbench_http_requests_total{") {
            requests += value;
        } else if name == "provbench_panics_total" {
            panics = value;
        }
    }
    (conns, requests, panics)
}

/// A delivered response must be structurally complete: header block
/// terminated, a parseable status line, and a `Content-Length` that
/// matches the bytes that follow.
fn assert_well_formed(output: &[u8], context: &str) {
    let text = String::from_utf8_lossy(output);
    assert!(text.starts_with("HTTP/1.1 "), "{context}: {text}");
    let Some(header_end) = text.find("\r\n\r\n") else {
        panic!("{context}: no header terminator in {text}");
    };
    let headers = &text[..header_end];
    let declared: usize = headers
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{context}: no Content-Length in {headers}"));
    let body_len = output.len() - (header_end + 4);
    assert_eq!(declared, body_len, "{context}: torn response {text}");
}

/// Drive one (possibly faulted) exchange and check the counting
/// invariants; returns (outcome, injected fault count, response bytes).
fn drive(
    ep: &Endpoint,
    raw: &[u8],
    fault: impl FnOnce(BufConn) -> FaultConn<BufConn>,
    context: &str,
) -> (&'static str, usize, Vec<u8>) {
    let (conns_before, requests_before, panics_before) = snapshot(ep);
    let mut conn = fault(BufConn::request(raw.to_vec()));
    let outcome = ep.serve_conn(&mut conn);
    let (conns_after, requests_after, panics_after) = snapshot(ep);

    assert_eq!(panics_after, panics_before, "{context}: handler panicked");
    assert!(
        requests_after <= requests_before + 1,
        "{context}: {} requests recorded for one connection",
        requests_after - requests_before
    );
    // Exactly one connection outcome moved, and exactly the returned one.
    let mut moved = 0u64;
    for (label, after) in &conns_after {
        let before = conns_before.get(label).copied().unwrap_or(0);
        moved += after - before;
        if label == outcome {
            assert_eq!(
                after - before,
                1,
                "{context}: outcome {outcome} not counted"
            );
        }
    }
    assert_eq!(moved, 1, "{context}: {moved} outcomes counted, want 1");

    (outcome, conn.injected(), conn.inner().output().to_vec())
}

/// Clean op count for one request shape: how many fault points the
/// exhaustive sweep must cover.
fn clean_ops(ep: &Endpoint, raw: &[u8]) -> usize {
    let mut counter = FaultConn::fail_nth(
        BufConn::request(raw.to_vec()),
        NetFaultKind::Reset,
        usize::MAX,
    );
    ep.serve_conn(&mut counter);
    assert_eq!(counter.injected(), 0);
    counter.ops()
}

#[test]
fn every_fault_point_yields_a_response_or_a_counted_error() {
    let ep = chaos_endpoint();
    let mut injections = 0usize;
    let mut outcomes: BTreeMap<&'static str, usize> = BTreeMap::new();

    for (name, raw) in request_shapes() {
        // Fault-free baseline: bytes and op count for this shape. The
        // sentinel op index never fires, so the wrapper only counts.
        let (outcome, injected, baseline) = drive(
            &ep,
            &raw,
            |c| FaultConn::fail_nth(c, NetFaultKind::Reset, usize::MAX),
            &format!("{name} baseline"),
        );
        assert_eq!(injected, 0);
        assert_eq!(outcome, "ok", "{name}: clean exchange must deliver");
        assert_well_formed(&baseline, &format!("{name} baseline"));
        let ops = clean_ops(&ep, &raw);
        assert!(ops >= 4, "{name}: suspiciously few fault points ({ops})");

        // The exhaustive sweep: every kind at every operation index.
        for kind in KINDS {
            for op in 0..ops {
                let context = format!("{name} / {kind:?} @ op {op}");
                let (outcome, injected, output) =
                    drive(&ep, &raw, |c| FaultConn::fail_nth(c, kind, op), &context);
                injections += injected;
                *outcomes.entry(outcome).or_default() += 1;
                if injected == 0 {
                    // The fault point was past the end of the exchange:
                    // this run must be indistinguishable from clean.
                    assert_eq!(outcome, "ok", "{context}");
                    assert_eq!(output, baseline, "{context}: clean run diverged");
                } else if outcome == "ok" {
                    // Faults fired yet the server claims delivery: the
                    // response must be complete and well-formed. It need
                    // not equal the baseline — e.g. a stalled body read
                    // legitimately becomes a 408 instead of a 200.
                    assert_well_formed(&output, &context);
                }
            }
        }
    }

    // Top the sweep up past 200 injected faults with seeded schedules —
    // multi-fault exchanges the one-shot sweep can't produce.
    let shapes = request_shapes();
    let mut seed = 0u64;
    while injections < 200 {
        seed += 1;
        let (name, raw) = &shapes[seed as usize % shapes.len()];
        let context = format!("{name} / seed {seed}");
        let (outcome, injected, output) =
            drive(&ep, raw, |c| FaultConn::seeded(c, seed, 5), &context);
        injections += injected;
        *outcomes.entry(outcome).or_default() += 1;
        if injected == 0 {
            assert_eq!(outcome, "ok", "{context}");
        } else if outcome == "ok" {
            assert_well_formed(&output, &context);
        }
    }

    assert!(injections >= 200, "only {injections} faults injected");
    assert_eq!(ep.panics_total(), 0);
    // The sweep must actually exercise the error paths, not just luck
    // into deliveries.
    for expected in [
        "ok",
        "read_error",
        "read_timeout",
        "write_error",
        "socket_error",
    ] {
        assert!(
            outcomes.contains_key(expected),
            "sweep never produced outcome {expected:?}: {outcomes:?}"
        );
    }
    println!("net chaos: {injections} faults injected, outcomes {outcomes:?}");
}

/// The seeded schedule is deterministic: the same seed injects the
/// same faults at the same points, byte-for-byte.
#[test]
fn seeded_schedules_replay_identically() {
    let ep = chaos_endpoint();
    let raw = b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n".to_vec();
    for seed in 1..=20u64 {
        let mut a = FaultConn::seeded(BufConn::request(raw.clone()), seed, 3);
        let mut b = FaultConn::seeded(BufConn::request(raw.clone()), seed, 3);
        let oa = ep.serve_conn(&mut a);
        let ob = ep.serve_conn(&mut b);
        assert_eq!(oa, ob, "seed {seed}: outcomes diverged");
        assert_eq!(a.injected(), b.injected(), "seed {seed}");
        assert_eq!(a.inner().output(), b.inner().output(), "seed {seed}");
    }
}
