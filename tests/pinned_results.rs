//! Pin the exact derived numbers that EXPERIMENTS.md documents for the
//! default seed. These are *reproducibility* tests: if any of them moves,
//! the corpus generation changed and EXPERIMENTS.md must be re-measured
//! (that is a deliberate cost — a reproduction whose numbers drift
//! silently is not a reproduction).

use provbench::analysis::{decay_summary, diagnose_corpus};
use provbench::corpus::stats::CorpusStats;
use provbench::corpus::{Corpus, CorpusSpec};
use provbench::query::exemplar::q1_runs;
use std::sync::OnceLock;

fn corpus() -> &'static Corpus {
    static CELL: OnceLock<Corpus> = OnceLock::new();
    CELL.get_or_init(|| Corpus::generate(&CorpusSpec::default()))
}

#[test]
fn fingerprint_matches_experiments_md() {
    assert_eq!(
        format!("{:016x}", corpus().fingerprint()),
        "a6d370ba15daa9be",
        "corpus content changed: re-measure EXPERIMENTS.md"
    );
}

#[test]
fn derived_statistics_match_experiments_md() {
    let stats = CorpusStats::compute(corpus());
    assert_eq!(stats.triples, 47_695, "triple count drifted");
    assert_eq!(stats.process_runs, 1_205, "process-run count drifted");
}

#[test]
fn q1_count_matches_experiments_md() {
    // 198 top-level runs + nested Taverna sub-workflow runs = 232.
    let runs = q1_runs(&corpus().combined_graph());
    assert_eq!(runs.len(), 232, "Q1 run count drifted");
}

#[test]
fn application_counts_match_experiments_md() {
    assert_eq!(diagnose_corpus(corpus()).len(), 30);
    let decay = decay_summary(corpus());
    assert_eq!(decay.len(), 78, "longitudinal series count drifted");
    assert_eq!(
        decay.iter().filter(|r| r.decayed).count(),
        54,
        "decayed-template count drifted"
    );
}
