//! Cross-crate integration: serialized corpus traces survive the
//! Turtle/TriG round-trip bit-for-bit at the graph level, traces satisfy
//! the PROV-CONSTRAINTS validator, and failed traces are *partial* but
//! still valid RDF.

use provbench::corpus::{store, Corpus, CorpusSpec};
use provbench::prov::constraints::validate;
use provbench::prov::from_rdf::graph_to_document;
use provbench::rdf::{parse_trig, parse_turtle};
use provbench::workflow::System;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusSpec {
        max_workflows: Some(70), // spans both systems
        total_runs: 90,
        failed_runs: 8,
        ..CorpusSpec::default()
    })
}

#[test]
fn every_trace_roundtrips_through_its_native_syntax() {
    let c = corpus();
    for trace in &c.traces {
        let serialized = store::serialize_trace(trace);
        match trace.system {
            System::Taverna => {
                let (g, _) =
                    parse_turtle(&serialized).unwrap_or_else(|e| panic!("{}: {e}", trace.run_id));
                assert_eq!(
                    &g,
                    trace.dataset.default_graph(),
                    "roundtrip mismatch for {}",
                    trace.run_id
                );
            }
            System::Wings => {
                let (ds, _) =
                    parse_trig(&serialized).unwrap_or_else(|e| panic!("{}: {e}", trace.run_id));
                assert_eq!(ds, trace.dataset, "roundtrip mismatch for {}", trace.run_id);
            }
        }
    }
}

#[test]
fn every_trace_satisfies_prov_constraints() {
    let c = corpus();
    for trace in &c.traces {
        let violations = validate(&trace.union_graph());
        assert!(
            violations.is_empty(),
            "{} violates PROV constraints: {violations:?}",
            trace.run_id
        );
    }
}

#[test]
fn descriptions_roundtrip() {
    let c = corpus();
    for (i, description) in c.descriptions.iter().enumerate() {
        let serialized = store::serialize_description(description);
        let (g, _) = parse_turtle(&serialized).unwrap();
        assert_eq!(&g, description, "description {i} mismatch");
    }
}

#[test]
fn traces_recover_into_prov_documents() {
    let c = corpus();
    for trace in c.traces.iter().take(20) {
        let doc = graph_to_document(&trace.union_graph());
        // Every trace declares entities, activities and agents…
        assert!(!doc.entities.is_empty(), "{} has no entities", trace.run_id);
        assert!(
            !doc.activities.is_empty(),
            "{} has no activities",
            trace.run_id
        );
        assert!(!doc.agents.is_empty(), "{} has no agents", trace.run_id);
        // …and the relations reference only declared nodes (extension
        // vocabulary aside).
        let dangling = doc.undeclared_references();
        assert!(
            dangling.is_empty(),
            "{} has dangling references: {dangling:?}",
            trace.run_id
        );
    }
}

#[test]
fn failed_traces_are_smaller_than_successful_ones() {
    let c = corpus();
    // Compare runs of the same template where one failed.
    let mut checked = 0;
    for failed in c.traces.iter().filter(|t| t.failed()) {
        if let Some(ok) = c
            .runs_of_template(&failed.template_name)
            .into_iter()
            .find(|t| !t.failed())
        {
            assert!(
                failed.dataset.len() < ok.dataset.len(),
                "failed {} not smaller than successful {}",
                failed.run_id,
                ok.run_id
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no comparable failed/successful pair found");
}
