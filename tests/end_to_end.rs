//! End-to-end integration: generate the full paper-shaped corpus once,
//! then check every headline claim of the paper against it.

use provbench::analysis::{
    coverage::diff_against_paper, coverage_of_corpus, decay_summary, diagnose_corpus,
};
use provbench::corpus::{stats::CorpusStats, stats::Table1, Corpus, CorpusSpec};
use provbench::query::exemplar::{
    q1_runs, q2_template_runs, q3_template_run_io, q4_process_runs, q5_executor, q6_services,
};
use provbench::wings::account_iri;
use provbench::workflow::System;
use std::sync::OnceLock;

/// The full corpus (120 workflows, 198 runs, 30 failed), generated once.
fn corpus() -> &'static Corpus {
    static CELL: OnceLock<Corpus> = OnceLock::new();
    CELL.get_or_init(|| Corpus::generate(&CorpusSpec::default()))
}

#[test]
fn headline_numbers_match_the_paper() {
    let c = corpus();
    let stats = CorpusStats::compute(c);
    assert_eq!(stats.workflows, 120, "the paper's 120 workflows");
    assert_eq!(stats.runs, 198, "the paper's 198 runs");
    assert_eq!(stats.failed_runs, 30, "the paper's 30 failed runs");
    assert_eq!(stats.domain_histogram.len(), 12, "the paper's 12 domains");
    assert_eq!(stats.taverna_workflows + stats.wings_workflows, 120);
    assert_eq!(
        stats
            .domain_histogram
            .iter()
            .map(|d| d.taverna + d.wings)
            .sum::<usize>(),
        120
    );
}

#[test]
fn table_1_shape() {
    let t1 = Table1::from_stats(&CorpusStats::compute(corpus()));
    let labels: Vec<&str> = t1.rows.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        labels,
        vec![
            "Data format",
            "Data model",
            "Size",
            "Tools used for generating provenance",
            "Domain",
            "Submission group",
            "License"
        ]
    );
    assert_eq!(t1.rows[0].1, "RDF");
    assert_eq!(t1.rows[1].1, "PROV-O");
}

#[test]
fn tables_2_and_3_match_the_paper() {
    let tables = coverage_of_corpus(corpus());
    let diffs = diff_against_paper(&tables);
    assert!(
        diffs.is_empty(),
        "coverage deviates from the paper: {diffs:?}"
    );
}

#[test]
fn q1_returns_every_run() {
    let c = corpus();
    let runs = q1_runs(&c.combined_graph());
    // Nested Taverna sub-workflow runs are themselves typed
    // wfprov:WorkflowRun (as taverna-prov does), so Q1 sees at least the
    // 198 top-level runs.
    assert!(runs.len() >= 198, "got {}", runs.len());
    // Every Taverna run carries times; Wings account times come from the
    // OPMW terms, also surfaced by Q1's UNION branch.
    assert!(runs.iter().filter(|r| r.started.is_some()).count() >= 198);
}

#[test]
fn q2_q3_match_the_plan() {
    let c = corpus();
    let graph = c.combined_graph();
    for (_, template) in c.templates.iter().take(6) {
        let expected: Vec<_> = c.runs_of_template(&template.name);
        let t = q2_template_runs(&graph, &template.name);
        assert_eq!(
            t.runs.len(),
            expected.len(),
            "run count for {}",
            template.name
        );
        assert_eq!(
            t.failed,
            expected.iter().filter(|r| r.failed()).count(),
            "failed count for {}",
            template.name
        );
        let io = q3_template_run_io(&graph, &template.name);
        assert_eq!(io.len(), expected.len());
        for run_io in &io {
            assert!(!run_io.inputs.is_empty(), "runs always stage inputs");
        }
    }
}

#[test]
fn q4_q5_behave_per_system() {
    let c = corpus();
    let graph = c.combined_graph();

    // A Taverna run: processes have times.
    let tav = c.traces_of(System::Taverna).find(|t| !t.failed()).unwrap();
    let tav_run = provbench::rdf::Iri::new_unchecked(format!(
        "{}workflow-run",
        provbench::taverna::run_base_iri(&tav.run_id)
    ));
    let processes = q4_process_runs(&graph, &tav_run);
    let executed = tav
        .run
        .processes
        .iter()
        .filter(|p| p.started_ms.is_some())
        .count();
    assert_eq!(processes.len(), executed);
    assert!(processes
        .iter()
        .all(|p| p.started.is_some() && p.ended.is_some()));

    // A Wings account: processes have no times (paper Table 2).
    let wgs = c.traces_of(System::Wings).find(|t| !t.failed()).unwrap();
    let account = account_iri(&wgs.run_id);
    let processes = q4_process_runs(&graph, &account);
    assert!(!processes.is_empty());
    assert!(processes
        .iter()
        .all(|p| p.started.is_none() && p.ended.is_none()));

    // Q5 names the planned user on both.
    for (trace, run_iri) in [(tav, tav_run), (wgs, account)] {
        let agents = q5_executor(&graph, &run_iri);
        assert!(
            agents
                .iter()
                .any(|(_, name)| name.as_deref() == Some(trace.run.user.as_str())),
            "Q5 must find {} for {}",
            trace.run.user,
            trace.run_id
        );
    }
}

#[test]
fn q6_is_wings_only() {
    let c = corpus();
    let graph = c.combined_graph();
    let wgs = c.traces_of(System::Wings).find(|t| !t.failed()).unwrap();
    let services = q6_services(&graph, &account_iri(&wgs.run_id));
    let executed: Vec<&str> = wgs
        .run
        .processes
        .iter()
        .filter(|p| p.started_ms.is_some())
        .filter_map(|p| p.service.as_deref())
        .collect();
    assert!(!services.is_empty());
    for s in &services {
        assert!(executed.contains(&s.as_str()), "unexpected service {s:?}");
    }

    // On a Taverna run, Q6 is empty — "only available in Wings logs".
    let tav = c.traces_of(System::Taverna).next().unwrap();
    let tav_run = provbench::rdf::Iri::new_unchecked(format!(
        "{}workflow-run",
        provbench::taverna::run_base_iri(&tav.run_id)
    ));
    assert!(q6_services(&graph, &tav_run).is_empty());
}

#[test]
fn applications_run_on_the_full_corpus() {
    let c = corpus();
    // §3.ii: every one of the 30 failures is diagnosable.
    let reports = diagnose_corpus(c);
    assert_eq!(reports.len(), 30);
    // §3.iii: longitudinal series exist and decay is observable.
    let decay = decay_summary(c);
    assert!(decay.len() >= 70, "most first-78 templates have 2 runs");
    assert!(decay.iter().any(|r| r.decayed));
    // §3.i: lineage on a trace.
    let trace = &c.traces[0];
    let lineage = provbench::analysis::dependency_edges(&trace.union_graph());
    assert!(!lineage.is_empty());
}

#[test]
fn corpus_is_reproducible() {
    // Same spec ⇒ identical corpus fingerprint (the determinism the whole
    // evaluation relies on).
    let a = Corpus::generate(&CorpusSpec {
        max_workflows: Some(10),
        total_runs: 15,
        failed_runs: 2,
        ..CorpusSpec::default()
    });
    let b = Corpus::generate(&CorpusSpec {
        max_workflows: Some(10),
        total_runs: 15,
        failed_runs: 2,
        ..CorpusSpec::default()
    });
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(
        corpus().fingerprint(),
        Corpus::generate(&CorpusSpec::default()).fingerprint()
    );
}
