//! Snapshot round-trip integration: a corpus saved to disk, snapshotted,
//! and memory-loaded back must be indistinguishable from a cold parse —
//! for the exemplar queries, for the planner's predicate statistics, and
//! under deliberate corruption (which must rebuild, never panic).

use provbench::corpus::snapshot::{self, SNAPSHOT_FILE};
use provbench::corpus::{store, Corpus, CorpusSpec, CorpusStore};
use provbench::query::exemplar::{
    q1_sparql, q2_runs_sparql, q3_inputs_sparql, q4_sparql, q5_sparql, q6_sparql,
};
use provbench::query::QueryEngine;
use provbench::rdf::{Graph, Iri};
use provbench::workflow::System;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("provbench-snaproot-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small corpus that still covers both systems (workflows #68+ are Wings
/// in catalog order) and both trace syntaxes (Turtle + TriG).
fn small_corpus() -> Corpus {
    let spec = CorpusSpec {
        max_workflows: Some(70),
        total_runs: 72,
        failed_runs: 3,
        ..CorpusSpec::default()
    };
    Corpus::generate(&spec)
}

/// Render solutions to sorted text so cold/warm result sets compare
/// independently of row enumeration order.
fn rendered(graph: &Graph, query: &str) -> Vec<String> {
    let solutions = QueryEngine::new(graph)
        .prepare(query)
        .and_then(|p| p.select())
        .unwrap_or_else(|e| panic!("query failed: {e:?}\n{query}"));
    let mut rows: Vec<String> = solutions
        .rows
        .iter()
        .map(|row| {
            solutions
                .variables
                .iter()
                .map(|v| row.get(v).map_or("-".into(), |t| t.to_string()))
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn exemplar_queries_agree_cold_vs_warm() {
    let corpus = small_corpus();
    let dir = tmpdir("queries");
    store::save(&corpus, &dir).unwrap();

    let cold = CorpusStore::build(&dir, 2).unwrap();
    assert!(!cold.provenance.warm);
    let warm = CorpusStore::open_or_build(&dir).unwrap();
    assert!(warm.provenance.warm, "second open must hit the snapshot");

    // The graphs are semantically equal even though intern order differs.
    assert_eq!(cold.union, warm.union);

    let tav = corpus
        .traces_of(System::Taverna)
        .find(|t| !t.failed())
        .unwrap();
    let tav_run = Iri::new_unchecked(format!(
        "{}workflow-run",
        provbench::taverna::run_base_iri(&tav.run_id)
    ));
    let template = &tav.template_name;

    let queries = [
        q1_sparql(),
        q2_runs_sparql(template),
        q3_inputs_sparql(template),
        q4_sparql(&tav_run),
        q5_sparql(&tav_run),
        q6_sparql(&tav_run),
    ];
    let mut non_empty = 0;
    for (i, q) in queries.iter().enumerate() {
        let from_cold = rendered(&cold.union, q);
        let from_warm = rendered(&warm.union, q);
        non_empty += usize::from(!from_cold.is_empty());
        assert_eq!(from_cold, from_warm, "Q{} differs cold vs warm", i + 1);
    }
    // Q6 (web services) can be empty for a service-free workflow, but the
    // sweep as a whole must exercise real data.
    assert!(non_empty >= 5, "only {non_empty} exemplar queries had rows");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn planner_statistics_agree_cold_vs_warm() {
    let corpus = small_corpus();
    let dir = tmpdir("stats");
    store::save(&corpus, &dir).unwrap();

    let cold = CorpusStore::build(&dir, 2).unwrap();
    let warm = CorpusStore::open_or_build(&dir).unwrap();
    assert!(warm.provenance.warm);

    let cold_stats = QueryEngine::new(&cold.union).predicate_statistics();
    let warm_stats = QueryEngine::new(&warm.union).predicate_statistics();
    assert!(!cold_stats.is_empty());
    assert_eq!(cold_stats, warm_stats);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corruption_rebuilds_and_never_panics() {
    let corpus = small_corpus();
    let dir = tmpdir("corrupt");
    store::save(&corpus, &dir).unwrap();
    let reference = CorpusStore::build(&dir, 2).unwrap();
    let path = dir.join(SNAPSHOT_FILE);
    let pristine = std::fs::read(&path).unwrap();

    // Checksum corruption: flip one body byte.
    let mut bytes = pristine.clone();
    let mid = snapshot::HEADER_LEN + (bytes.len() - snapshot::HEADER_LEN) / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let s = CorpusStore::open_or_build(&dir).unwrap();
    assert!(!s.provenance.warm);
    assert_eq!(s.union, reference.union);

    // Truncation, at several depths including inside the header.
    for keep in [0, 3, snapshot::HEADER_LEN, pristine.len() / 2] {
        std::fs::write(&path, &pristine[..keep]).unwrap();
        let s = CorpusStore::open_or_build(&dir).unwrap();
        assert!(!s.provenance.warm, "truncated to {keep} bytes");
        assert_eq!(s.union, reference.union);
    }

    // A future format version must be rejected with a version message.
    let mut bytes = pristine.clone();
    bytes[6] = 0xFE;
    bytes[7] = 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let s = CorpusStore::open_or_build(&dir).unwrap();
    assert!(!s.provenance.warm);
    let reason = s.provenance.rebuild_reason.as_deref().unwrap_or("");
    assert!(reason.contains("version"), "got reason: {reason}");

    // Every rebuild rewrote a valid snapshot: the next open is warm.
    let s = CorpusStore::open_or_build(&dir).unwrap();
    assert!(s.provenance.warm);

    std::fs::remove_dir_all(&dir).unwrap();
}
