//! End-to-end observability: the `--trace` flag writes a parseable
//! JSONL span trace, and a registry populated by real ingest + query
//! work renders valid Prometheus text (monotone cumulative buckets,
//! consistent `_sum`/`_count` lines).

use provbench::corpus::store::{CorpusStore, StoreOptions};
use provbench::corpus::{store, Corpus, CorpusSpec};
use provbench::obs::{Registry, TraceEvent};
use provbench::query::QueryEngine;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("provbench-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn trace_flag_writes_parseable_jsonl() {
    let dir = scratch_dir("trace");
    let ttl = dir.join("tiny.ttl");
    std::fs::write(&ttl, "@prefix e: <http://e/> .\ne:a e:p e:b .\n").unwrap();
    let trace = dir.join("trace.jsonl");

    // `provbench lint` crosses the `lint.corpus` span; findings (if
    // any) only affect the exit code, not the trace.
    let output = Command::new(env!("CARGO_BIN_EXE_provbench"))
        .args([
            "lint",
            ttl.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("run provbench");

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let events = TraceEvent::parse_jsonl(&text);
    assert!(
        !events.is_empty(),
        "no spans in trace {text:?}; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        events.iter().any(|e| e.name == "lint.corpus"),
        "expected a lint.corpus span, got {events:?}"
    );
    // Each written line survives a serialize → parse round trip.
    for e in &events {
        assert_eq!(
            TraceEvent::parse_json_line(&e.to_json_line()),
            Some(e.clone())
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Check one bucket run (the consecutive `_bucket` lines of a single
/// histogram series): counts are cumulative, the series ends at `+Inf`,
/// and the `+Inf` count equals the series' `_count` line, which is
/// accompanied by a `_sum` line.
fn check_bucket_run(run: &[(String, f64, u64)], rendered: &str) {
    for pair in run.windows(2) {
        assert!(
            pair[1].2 >= pair[0].2,
            "buckets not cumulative: {pair:?} in\n{rendered}"
        );
    }
    let (prefix, le, last) = run.last().cloned().unwrap();
    assert!(le.is_infinite(), "series {prefix} does not end at +Inf");
    // `prefix` is everything before `le="…"`: either `name_bucket{` (no
    // other labels) or `name_bucket{route="/sparql",`. Rebuild the
    // matching `_count` line start from it.
    let count_start = if prefix.ends_with("_bucket{") {
        format!("{} ", prefix.replace("_bucket{", "_count"))
    } else {
        format!(
            "{}}} ",
            prefix.trim_end_matches(',').replace("_bucket{", "_count{")
        )
    };
    let count_line = rendered
        .lines()
        .find(|l| l.starts_with(&count_start))
        .unwrap_or_else(|| panic!("no _count line starting {count_start:?} in\n{rendered}"));
    let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(last, count, "+Inf bucket != _count for {prefix}");
    let sum_start = count_start.replace("_count", "_sum");
    assert!(
        rendered.lines().any(|l| l.starts_with(&sum_start)),
        "no _sum line starting {sum_start:?}"
    );
}

/// Check the Prometheus exposition invariants for every histogram in a
/// rendering, grouping consecutive `_bucket` lines into series runs.
fn assert_valid_histograms(rendered: &str) {
    let mut checked = 0usize;
    let mut run: Vec<(String, f64, u64)> = Vec::new();
    for line in rendered.lines() {
        let Some(le_at) = line.find("le=\"") else {
            if !run.is_empty() {
                check_bucket_run(&run, rendered);
                checked += 1;
                run.clear();
            }
            continue;
        };
        let prefix = line[..le_at].to_string();
        let le_text = line[le_at + 4..].split('"').next().unwrap();
        let le = if le_text == "+Inf" {
            f64::INFINITY
        } else {
            le_text.parse().unwrap()
        };
        let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        let new_series = run
            .last()
            .is_some_and(|(p, prev_le, _)| *p != prefix || le <= *prev_le);
        if new_series {
            check_bucket_run(&run, rendered);
            checked += 1;
            run.clear();
        }
        run.push((prefix, le, value));
    }
    if !run.is_empty() {
        check_bucket_run(&run, rendered);
        checked += 1;
    }
    assert!(checked > 0, "no histogram series found in\n{rendered}");
}

/// `le` is an *inclusive* upper bound: an observation exactly at a
/// bucket boundary must land in that bucket, not the next one up.
#[test]
fn observation_at_bucket_upper_bound_lands_in_that_bucket() {
    let registry = Registry::new();
    let h = registry.histogram("provbench_edge_seconds", "boundary semantics", &[0.1, 1.0]);
    h.observe(0.1); // exactly the first upper bound
    h.observe(1.0); // exactly the second
    h.observe(0.5); // strictly between the two

    let rendered = registry.render_prometheus();
    for line in [
        // 0.1 holds exactly the boundary observation; 1.0 is cumulative.
        "provbench_edge_seconds_bucket{le=\"0.1\"} 1",
        "provbench_edge_seconds_bucket{le=\"1\"} 3",
        "provbench_edge_seconds_bucket{le=\"+Inf\"} 3",
        "provbench_edge_seconds_count 3",
    ] {
        assert!(rendered.contains(line), "missing {line:?} in\n{rendered}");
    }
    assert_valid_histograms(&rendered);
}

/// Label values containing `"`, `\`, and newlines must render as valid
/// exposition text: escaped in place, one sample per line, and still
/// parseable by the histogram validator.
#[test]
fn hostile_label_values_render_valid_exposition() {
    let registry = Registry::new();
    registry
        .counter_with(
            "provbench_hostile_total",
            "hostile labels",
            &[("q", "say \"hi\"\nc:\\temp")],
        )
        .inc();
    let h = registry.histogram_with(
        "provbench_hostile_seconds",
        "hostile labels",
        &[0.1, 1.0],
        &[("q", "a \"quoted\\path\"")],
    );
    h.observe(0.1);

    let rendered = registry.render_prometheus();
    // Backslash first, then quote, then newline — each escaped so every
    // sample stays on one physical line.
    assert!(
        rendered.contains("provbench_hostile_total{q=\"say \\\"hi\\\"\\nc:\\\\temp\"} 1"),
        "counter labels not escaped in\n{rendered}"
    );
    assert!(
        rendered.contains(
            "provbench_hostile_seconds_bucket{q=\"a \\\"quoted\\\\path\\\"\",le=\"0.1\"} 1"
        ),
        "histogram labels not escaped in\n{rendered}"
    );
    // No raw newline may survive inside a sample line: every line is
    // either a comment or ends in a numeric value.
    for line in rendered.lines().filter(|l| !l.starts_with('#')) {
        let value = line.rsplit(' ').next().unwrap();
        assert!(
            value.parse::<f64>().is_ok(),
            "line does not end in a number (broken escaping?): {line:?}"
        );
    }
    assert_valid_histograms(&rendered);
}

#[test]
fn ingest_and_query_metrics_render_valid_prometheus() {
    let dir = scratch_dir("metrics");
    let spec = CorpusSpec {
        max_workflows: Some(2),
        total_runs: 3,
        failed_runs: 0,
        ..CorpusSpec::default()
    };
    store::save(&Corpus::generate(&spec), &dir).unwrap();

    let registry = Arc::new(Registry::new());
    let opts = StoreOptions {
        metrics: Arc::clone(&registry),
        ..StoreOptions::default()
    };
    // Cold open (parse) then warm open (snapshot decode): both modes
    // land on the registry.
    let s = CorpusStore::open_or_build_opts(&dir, &opts).unwrap();
    let s2 = CorpusStore::open_or_build_opts(&dir, &opts).unwrap();
    assert!(s2.provenance.warm);

    let engine = QueryEngine::new(&s.union).with_metrics(&registry);
    let solutions = engine
        .prepare("SELECT ?r WHERE { ?r a <http://purl.org/wf4ever/wfprov#WorkflowRun> }")
        .and_then(|p| p.select())
        .unwrap();
    assert!(!solutions.is_empty());

    let rendered = registry.render_prometheus();
    for metric in [
        "provbench_ingest_files_total",
        "provbench_ingest_file_seconds",
        "provbench_store_opens_total{mode=\"cold\"} 1",
        "provbench_store_opens_total{mode=\"warm\"} 1",
        "provbench_snapshot_encode_seconds",
        "provbench_snapshot_decode_seconds",
        "provbench_query_prepare_seconds",
        "provbench_query_eval_seconds",
        "provbench_query_evals_total{result=\"ok\"} 1",
        "provbench_span_seconds_count{span=\"store.open\"} 2",
    ] {
        assert!(rendered.contains(metric), "missing {metric} in\n{rendered}");
    }
    // Every # TYPE line precedes its samples and names a known type.
    for line in rendered.lines().filter(|l| l.starts_with("# TYPE")) {
        let kind = line.rsplit(' ').next().unwrap();
        assert!(
            matches!(kind, "counter" | "gauge" | "histogram"),
            "unknown type in {line}"
        );
    }
    assert_valid_histograms(&rendered);
    std::fs::remove_dir_all(&dir).ok();
}
