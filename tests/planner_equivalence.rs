//! The planner must never change *what* a query answers — only how fast.
//!
//! Property-style equivalence suite: every exemplar query (Q1–Q6) and a
//! batch of randomized basic graph patterns must produce byte-identical
//! solution sequences with selectivity-ordered joins and with forced
//! lexical (written-order) evaluation — and, since evaluation can now
//! run across worker threads, byte-identical sequences again at every
//! job count (the parallel path merges per-chunk results in chunk
//! order, so thread scheduling must never leak into the output).

use provbench::corpus::{Corpus, CorpusSpec};
use provbench::query::exemplar::{
    q1_sparql, q2_failed_sparql, q2_runs_sparql, q3_inputs_sparql, q3_outputs_sparql, q4_sparql,
    q5_sparql, q6_sparql,
};
use provbench::query::{EvalOptions, QueryEngine, Solutions};
use provbench::rdf::{Graph, Iri, Literal, Triple};
use provbench::workflow::System;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusSpec {
        max_workflows: Some(70),
        total_runs: 90,
        failed_runs: 8,
        ..CorpusSpec::default()
    })
}

fn both_plans(graph: &Graph, query: &str) -> (Solutions, Solutions) {
    let ordered = QueryEngine::new(graph)
        .prepare(query)
        .and_then(|p| p.select())
        .unwrap_or_else(|e| panic!("planner-on failed on {query}: {e}"));
    let lexical = QueryEngine::with_options(graph, EvalOptions::lexical())
        .prepare(query)
        .and_then(|p| p.select())
        .unwrap_or_else(|e| panic!("planner-off failed on {query}: {e}"));
    (ordered, lexical)
}

/// Byte-identical output: same variables, same rows, same row order.
fn assert_identical(graph: &Graph, query: &str) {
    let (a, b) = both_plans(graph, query);
    assert_eq!(a.variables, b.variables, "variables differ for {query}");
    assert_eq!(a.rows, b.rows, "rows differ for {query}");
}

/// Same solution multiset. Row *order* in an unsorted query follows the
/// join order, so only the multiset is an invariant without ORDER BY.
fn assert_same_rows(graph: &Graph, query: &str) {
    let (a, b) = both_plans(graph, query);
    assert_eq!(a.variables, b.variables, "variables differ for {query}");
    let key = |s: &Solutions| {
        let mut rows: Vec<String> = s.rows.iter().map(|r| format!("{r:?}")).collect();
        rows.sort();
        rows
    };
    assert_eq!(key(&a), key(&b), "row multisets differ for {query}");
}

#[test]
fn exemplar_queries_are_planner_invariant() {
    let corpus = corpus();
    let graph = corpus.combined_graph();
    let template = corpus.templates[0].1.name.clone();
    let tav_run = Iri::new_unchecked(format!(
        "{}workflow-run",
        provbench::taverna::run_base_iri(&corpus.traces_of(System::Taverna).next().unwrap().run_id)
    ));
    let account =
        provbench::wings::account_iri(&corpus.traces_of(System::Wings).next().unwrap().run_id);

    for query in [
        q1_sparql(),
        q2_runs_sparql(&template),
        q2_failed_sparql(&template),
        q3_inputs_sparql(&template),
        q3_outputs_sparql(&template),
        q4_sparql(&tav_run),
        q5_sparql(&tav_run),
        q6_sparql(&account),
    ] {
        assert_identical(&graph, &query);
    }
}

/// Evaluate `query` at every job count in `jobs`; all results must be
/// byte-identical (variables, rows, row order) to the serial run.
fn assert_jobs_invariant(graph: &Graph, query: &str, jobs: &[usize]) {
    let serial = QueryEngine::new(graph)
        .prepare(query)
        .and_then(|p| p.select())
        .unwrap_or_else(|e| panic!("serial eval failed on {query}: {e}"));
    for &n in jobs {
        let parallel = QueryEngine::with_options(graph, EvalOptions::default().with_jobs(n))
            .prepare(query)
            .and_then(|p| p.select())
            .unwrap_or_else(|e| panic!("jobs={n} failed on {query}: {e}"));
        assert_eq!(
            parallel.variables, serial.variables,
            "variables differ at jobs={n} for {query}"
        );
        assert_eq!(
            parallel.rows, serial.rows,
            "rows differ at jobs={n} for {query}"
        );
    }
}

#[test]
fn exemplar_queries_are_jobs_invariant() {
    let corpus = corpus();
    let graph = corpus.combined_graph();
    let template = corpus.templates[0].1.name.clone();
    let tav_run = Iri::new_unchecked(format!(
        "{}workflow-run",
        provbench::taverna::run_base_iri(&corpus.traces_of(System::Taverna).next().unwrap().run_id)
    ));
    let account =
        provbench::wings::account_iri(&corpus.traces_of(System::Wings).next().unwrap().run_id);

    for query in [
        q1_sparql(),
        q2_runs_sparql(&template),
        q2_failed_sparql(&template),
        q3_inputs_sparql(&template),
        q3_outputs_sparql(&template),
        q4_sparql(&tav_run),
        q5_sparql(&tav_run),
        q6_sparql(&account),
    ] {
        assert_jobs_invariant(&graph, &query, &[1, 2, 8]);
    }
}

/// A deterministic xorshift so the "random" BGPs are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0 % bound
    }
}

/// A closed-vocabulary random graph, like the proptest generator's, so
/// randomized patterns actually join.
fn random_graph(rng: &mut Rng, triples: usize) -> Graph {
    (0..triples)
        .map(|_| {
            let s = Iri::new_unchecked(format!("http://t/s{}", rng.next(8)));
            let p = Iri::new_unchecked(format!("http://t/p{}", rng.next(4)));
            if rng.next(2) == 0 {
                Triple::new(s, p, Literal::integer(rng.next(10) as i64))
            } else {
                Triple::new(
                    s,
                    p,
                    Iri::new_unchecked(format!("http://t/o{}", rng.next(10))),
                )
            }
        })
        .collect()
}

/// A random BGP of 2–4 triple patterns over a small shared variable and
/// constant pool, occasionally decorated with FILTER/ORDER BY/LIMIT.
fn random_query(rng: &mut Rng) -> String {
    let vars = ["?a", "?b", "?c", "?d"];
    let n = 2 + rng.next(3) as usize;
    let mut body = String::new();
    for _ in 0..n {
        let s = vars[rng.next(3) as usize];
        let p = match rng.next(3) {
            0 => format!("<http://t/p{}>", rng.next(4)),
            _ => vars[3].to_owned(), // shared predicate variable
        };
        let o = match rng.next(4) {
            0 => format!("<http://t/o{}>", rng.next(10)),
            1 => format!("{}", rng.next(10)),
            _ => vars[rng.next(4) as usize].to_owned(),
        };
        body.push_str(&format!("  {s} {p} {o} .\n"));
    }
    let tail = match rng.next(4) {
        0 => " ORDER BY ?a".to_owned(),
        1 => format!(" LIMIT {}", 1 + rng.next(20)),
        _ => String::new(),
    };
    format!("SELECT * WHERE {{\n{body}}}{tail}")
}

#[test]
fn randomized_bgps_are_planner_invariant() {
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    for round in 0..60 {
        let size = 5 + rng.next(35) as usize;
        let graph = random_graph(&mut rng, size);
        for _ in 0..4 {
            let query = random_query(&mut rng);
            if query.contains("LIMIT") {
                // LIMIT without ORDER BY may legitimately keep different
                // rows under a different join order; skip the comparison.
                continue;
            }
            // Ties under ORDER BY keep join order, so the multiset is
            // the invariant for random queries either way.
            assert_same_rows(&graph, &query);
            // Parallel evaluation at a fixed planner setting is a
            // stronger invariant: byte-identical, row order included.
            assert_jobs_invariant(&graph, &query, &[1, 2, 8]);
        }
        // Also check with ASK semantics every few rounds.
        if round % 5 == 0 {
            let query = random_query(&mut rng).replace("SELECT *", "ASK");
            let query = query
                .split(" ORDER BY")
                .next()
                .unwrap()
                .split(" LIMIT")
                .next()
                .unwrap()
                .to_owned();
            let on = QueryEngine::new(&graph)
                .prepare(&query)
                .and_then(|p| p.ask())
                .unwrap();
            let off = QueryEngine::with_options(&graph, EvalOptions::lexical())
                .prepare(&query)
                .and_then(|p| p.ask())
                .unwrap();
            assert_eq!(on, off, "ASK differs for {query}");
        }
    }
}
