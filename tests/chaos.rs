//! Deterministic fault-injection ("chaos") suite for the corpus store.
//!
//! Gated behind the `fault-inject` feature:
//!
//! ```text
//! cargo test --features fault-inject --test chaos
//! ```
//!
//! The harness measures how many filesystem operations one clean
//! cold open performs, then replays the open once per (fault kind ×
//! operation index) pair, injecting exactly one fault at that point.
//! A seeded pseudo-random schedule tops the sweep up past 200 injected
//! fault points. After every faulted open, two invariants must hold and
//! nothing may panic:
//!
//! 1. the open itself still succeeds in default (quarantining) mode,
//!    and its corpus is either verbatim-correct or accompanied by a
//!    non-empty quarantine report;
//! 2. a follow-up open on the *real* filesystem recovers: it serves the
//!    correct corpus, or degrades explicitly through a persisted
//!    quarantine report — never a silently partial corpus.

use provbench::corpus::fsio::{FaultFs, FaultKind};
use provbench::corpus::snapshot::SNAPSHOT_FILE;
use provbench::corpus::store::{self, CorpusStore, StoreOptions, SNAPSHOT_LOCK, SNAPSHOT_TMP};
use provbench::corpus::{Corpus, CorpusSpec, INGEST_REPORT_FILE};
use provbench::rdf::Graph;
use std::path::{Path, PathBuf};
use std::time::Duration;

const KINDS: [FaultKind; 4] = [
    FaultKind::ReadError,
    FaultKind::Interrupted,
    FaultKind::ShortWrite,
    FaultKind::TornRename,
];

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("provbench-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A corpus big enough that one cold open performs a meaningful number
/// of filesystem operations, small enough to replay hundreds of times.
fn chaos_corpus() -> Corpus {
    let spec = CorpusSpec {
        max_workflows: Some(8),
        total_runs: 10,
        failed_runs: 2,
        ..CorpusSpec::default()
    };
    Corpus::generate(&spec)
}

/// Remove every store-managed artifact so each replay starts from the
/// identical cold state (faults are addressed by operation index, so
/// the operation sequence must be reproducible).
fn reset(dir: &Path) {
    for name in [
        SNAPSHOT_FILE,
        SNAPSHOT_TMP,
        SNAPSHOT_LOCK,
        INGEST_REPORT_FILE,
        "corpus.ingest-report.tmp",
    ] {
        let _ = std::fs::remove_file(dir.join(name));
    }
}

/// Store options routed through the fault shim. Single-threaded parsing
/// keeps the operation order (and thus the fault schedule) deterministic.
fn faulty_opts(fs: &FaultFs) -> StoreOptions<'_> {
    StoreOptions {
        jobs: 1,
        strict: false,
        lock_timeout: Duration::from_millis(200),
        fs,
        metrics: std::sync::Arc::clone(provbench::obs::global()),
    }
}

/// The store's core robustness contract: a clean report means the
/// corpus is verbatim-correct; anything less must be reported.
fn check_outcome(context: &str, store: &CorpusStore, reference: &Graph) {
    if store.ingest.is_clean() {
        assert_eq!(
            &store.union, reference,
            "{context}: clean ingest must mean a verbatim corpus"
        );
    } else {
        assert!(
            !store.ingest.errors.is_empty(),
            "{context}: dirty report with no errors"
        );
        assert_eq!(
            store.corpus.traces.len() + store.corpus.descriptions.len(),
            store.ingest.attempted - store.ingest.errors.len(),
            "{context}: loaded files + quarantined files must cover every attempt"
        );
    }
}

#[test]
fn every_fault_point_recovers_or_reports() {
    let corpus = chaos_corpus();
    let dir = tmpdir("sweep");
    store::save(&corpus, &dir).unwrap();
    let reference = corpus.combined_dataset().union_graph();

    // Dry run: count the operations of one clean cold open. A fault
    // index beyond the end never fires, so this measures the whole
    // clean path.
    reset(&dir);
    let probe = FaultFs::fail_nth(FaultKind::Interrupted, usize::MAX);
    let clean = CorpusStore::open_or_build_opts(&dir, &faulty_opts(&probe)).unwrap();
    assert!(clean.ingest.is_clean());
    assert_eq!(clean.union, reference);
    let total_ops = probe.ops();
    assert!(total_ops >= 40, "suspiciously few fs ops: {total_ops}");

    let mut injected_total = 0usize;
    for kind in KINDS {
        for op in 0..total_ops {
            let context = format!("{kind:?} at op {op}/{total_ops}");
            reset(&dir);
            let fs = FaultFs::fail_nth(kind, op);
            let store = CorpusStore::open_or_build_opts(&dir, &faulty_opts(&fs))
                .unwrap_or_else(|e| panic!("{context}: default-mode open must not fail: {e}"));
            // The clean prefix up to `op` is shared with the dry run, so
            // the fault point is always reached.
            assert_eq!(fs.injected(), 1, "{context}: fault not reached");
            injected_total += fs.injected();
            check_outcome(&context, &store, &reference);

            // Recovery: the next open on the real filesystem self-heals
            // (stale temp/lock litter, torn snapshots) or reports.
            let recovered = CorpusStore::open_or_build_with_threads(&dir, 1)
                .unwrap_or_else(|e| panic!("{context}: recovery open failed: {e}"));
            check_outcome(&format!("{context} (recovery)"), &recovered, &reference);
        }
    }

    // Seeded schedule on top of the exhaustive sweep: multiple faults
    // per open, different mixes per seed, fully reproducible.
    let mut seed = 0xC0FFEE_u64;
    while injected_total < 220 {
        seed += 1;
        let context = format!("seeded run {seed:#x}");
        reset(&dir);
        let fs = FaultFs::seeded(seed, 4);
        let store = CorpusStore::open_or_build_opts(&dir, &faulty_opts(&fs))
            .unwrap_or_else(|e| panic!("{context}: default-mode open must not fail: {e}"));
        injected_total += fs.injected();
        check_outcome(&context, &store, &reference);
        let recovered = CorpusStore::open_or_build_with_threads(&dir, 1)
            .unwrap_or_else(|e| panic!("{context}: recovery open failed: {e}"));
        check_outcome(&format!("{context} (recovery)"), &recovered, &reference);
    }
    assert!(
        injected_total >= 200,
        "only {injected_total} faults injected"
    );

    // Once the chaos stops, the store converges back to a clean warm state.
    reset(&dir);
    let settled = CorpusStore::open_or_build_with_threads(&dir, 1).unwrap();
    assert!(settled.ingest.is_clean());
    assert_eq!(settled.union, reference);
    let warm = CorpusStore::open_or_build_with_threads(&dir, 1).unwrap();
    assert!(warm.provenance.warm);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--strict` under injected read faults: the open either stays clean or
/// fails fast with the strict-ingestion error — never a partial corpus.
#[test]
fn strict_mode_surfaces_injected_read_faults() {
    let corpus = chaos_corpus();
    let dir = tmpdir("strict");
    store::save(&corpus, &dir).unwrap();
    let reference = corpus.combined_dataset().union_graph();

    reset(&dir);
    let probe = FaultFs::fail_nth(FaultKind::ReadError, usize::MAX);
    let clean = CorpusStore::open_or_build_opts(&dir, &faulty_opts(&probe)).unwrap();
    assert_eq!(clean.union, reference);
    let total_ops = probe.ops();

    let mut failures = 0usize;
    for op in 0..total_ops {
        reset(&dir);
        let fs = FaultFs::fail_nth(FaultKind::ReadError, op);
        let opts = StoreOptions {
            strict: true,
            ..faulty_opts(&fs)
        };
        match CorpusStore::open_or_build_opts(&dir, &opts) {
            Ok(s) => {
                assert!(s.ingest.is_clean(), "strict mode returned a dirty store");
                assert_eq!(s.union, reference);
            }
            Err(e) => {
                assert!(
                    e.to_string().contains("strict ingestion"),
                    "unexpected strict failure at op {op}: {e}"
                );
                failures += 1;
            }
        }
    }
    assert!(
        failures > 0,
        "no read fault ever hit a source file in {total_ops} ops"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
