//! The streaming API must never change *what* a query answers.
//!
//! `PreparedQuery::select()` is a collect over `rows()`, and these
//! tests pin the contract from the outside: for every exemplar query
//! (Q1–Q6) and a batch of randomized basic graph patterns, draining the
//! streaming iterator yields a byte-identical solution sequence to the
//! materialized call — at jobs ∈ {1, 4}, so the parallel chunk-drain
//! path is held to the same standard. Errors must round-trip too (a
//! row-budget trip surfaces identically from both APIs), and dropping a
//! partially-consumed iterator must release its deadline/row-budget
//! accounting cleanly: per-evaluation state never leaks into the next
//! run of the same prepared plan.

use provbench::corpus::{Corpus, CorpusSpec};
use provbench::query::exemplar::{
    q1_sparql, q2_failed_sparql, q2_runs_sparql, q3_inputs_sparql, q3_outputs_sparql, q4_sparql,
    q5_sparql, q6_sparql,
};
use provbench::query::{EvalOptions, QueryEngine, QueryError};
use provbench::rdf::{Graph, Iri, Literal, Triple};
use provbench::workflow::System;

fn corpus() -> Corpus {
    Corpus::generate(&CorpusSpec {
        max_workflows: Some(70),
        total_runs: 90,
        failed_runs: 8,
        ..CorpusSpec::default()
    })
}

/// Drain `rows()` and compare against `select()` at each job count:
/// same variables, same rows, same row order.
fn assert_stream_matches_select(graph: &Graph, query: &str, jobs: &[usize]) {
    for &n in jobs {
        let engine = QueryEngine::with_options(graph, EvalOptions::default().with_jobs(n));
        let prepared = engine
            .prepare(query)
            .unwrap_or_else(|e| panic!("prepare failed on {query}: {e}"));
        let materialized = prepared
            .select()
            .unwrap_or_else(|e| panic!("select failed at jobs={n} on {query}: {e}"));
        let rows = prepared
            .rows()
            .unwrap_or_else(|e| panic!("rows failed at jobs={n} on {query}: {e}"));
        assert_eq!(
            rows.variables(),
            materialized.variables.as_slice(),
            "variables differ at jobs={n} for {query}"
        );
        let streamed: Vec<_> = rows
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| panic!("stream failed at jobs={n} on {query}: {e}"));
        assert_eq!(
            streamed, materialized.rows,
            "streamed rows differ at jobs={n} for {query}"
        );
    }
}

#[test]
fn exemplar_queries_stream_identically() {
    let corpus = corpus();
    let graph = corpus.combined_graph();
    let template = corpus.templates[0].1.name.clone();
    let tav_run = Iri::new_unchecked(format!(
        "{}workflow-run",
        provbench::taverna::run_base_iri(&corpus.traces_of(System::Taverna).next().unwrap().run_id)
    ));
    let account =
        provbench::wings::account_iri(&corpus.traces_of(System::Wings).next().unwrap().run_id);

    for query in [
        q1_sparql(),
        q2_runs_sparql(&template),
        q2_failed_sparql(&template),
        q3_inputs_sparql(&template),
        q3_outputs_sparql(&template),
        q4_sparql(&tav_run),
        q5_sparql(&tav_run),
        q6_sparql(&account),
    ] {
        assert_stream_matches_select(&graph, &query, &[1, 4]);
    }
}

/// A deterministic xorshift so the "random" BGPs are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0 % bound
    }
}

/// A closed-vocabulary random graph, like the proptest generator's, so
/// randomized patterns actually join.
fn random_graph(rng: &mut Rng, triples: usize) -> Graph {
    (0..triples)
        .map(|_| {
            let s = Iri::new_unchecked(format!("http://t/s{}", rng.next(8)));
            let p = Iri::new_unchecked(format!("http://t/p{}", rng.next(4)));
            if rng.next(2) == 0 {
                Triple::new(s, p, Literal::integer(rng.next(10) as i64))
            } else {
                Triple::new(
                    s,
                    p,
                    Iri::new_unchecked(format!("http://t/o{}", rng.next(10))),
                )
            }
        })
        .collect()
}

/// A random BGP of 2–4 triple patterns over a small shared variable and
/// constant pool, occasionally decorated with DISTINCT/ORDER BY/LIMIT.
/// Unlike the planner-equivalence suite, LIMIT without ORDER BY is fair
/// game here: streaming and materialized evaluation share one plan, so
/// even order-sensitive modifiers must agree byte for byte.
fn random_query(rng: &mut Rng) -> String {
    let vars = ["?a", "?b", "?c", "?d"];
    let n = 2 + rng.next(3) as usize;
    let mut body = String::new();
    for _ in 0..n {
        let s = vars[rng.next(3) as usize];
        let p = match rng.next(3) {
            0 => format!("<http://t/p{}>", rng.next(4)),
            _ => vars[3].to_owned(), // shared predicate variable
        };
        let o = match rng.next(4) {
            0 => format!("<http://t/o{}>", rng.next(10)),
            1 => format!("{}", rng.next(10)),
            _ => vars[rng.next(4) as usize].to_owned(),
        };
        body.push_str(&format!("  {s} {p} {o} .\n"));
    }
    let head = if rng.next(4) == 0 {
        "SELECT DISTINCT *"
    } else {
        "SELECT *"
    };
    let tail = match rng.next(4) {
        0 => " ORDER BY ?a".to_owned(),
        1 => format!(" LIMIT {}", 1 + rng.next(20)),
        _ => String::new(),
    };
    format!("{head} WHERE {{\n{body}}}{tail}")
}

#[test]
fn randomized_bgps_stream_identically() {
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    for _ in 0..60 {
        let size = 5 + rng.next(35) as usize;
        let graph = random_graph(&mut rng, size);
        for _ in 0..4 {
            let query = random_query(&mut rng);
            assert_stream_matches_select(&graph, &query, &[1, 4]);
        }
    }
}

#[test]
fn budget_errors_surface_identically_from_both_apis() {
    let mut rng = Rng(0x5eed_cafe_f00d_0002);
    let graph = random_graph(&mut rng, 30);
    let opts = EvalOptions::default().with_row_budget(3);
    let prepared = QueryEngine::with_options(&graph, opts)
        .prepare("SELECT ?a ?b WHERE { ?a ?p ?b . ?c ?q ?d }")
        .unwrap();
    let materialized = prepared.select();
    let streamed: Result<Vec<_>, _> = prepared.rows().unwrap().collect();
    match (materialized, streamed) {
        (Err(QueryError::Timeout(a)), Err(QueryError::Timeout(b))) => {
            assert_eq!(a, b, "budget errors differ between select() and rows()")
        }
        other => panic!("expected identical budget trips, got {other:?}"),
    }
}

#[test]
fn dropped_iterator_releases_budget_accounting() {
    let mut rng = Rng(0x5eed_cafe_f00d_0003);
    let graph = random_graph(&mut rng, 30);
    // A budget a full cross-join drain would trip many times over, but
    // the first row fits well inside.
    let opts = EvalOptions::default().with_row_budget(10);
    let prepared = QueryEngine::with_options(&graph, opts)
        .prepare("SELECT ?a ?b WHERE { ?a ?p ?b . ?c ?q ?d } LIMIT 2")
        .unwrap();
    // Partially consume and drop, repeatedly: if any deadline or
    // row-budget accounting leaked across evaluations, the later
    // iterations (or the final full drain) would trip the budget.
    for round in 0..20 {
        let mut rows = prepared.rows().unwrap();
        match rows.next() {
            Some(Ok(_)) => {}
            other => panic!("round {round}: expected a first row, got {other:?}"),
        }
        drop(rows);
    }
    let full = prepared
        .select()
        .expect("full drain after partial consumptions");
    assert_eq!(full.len(), 2);
}
