//! Process-level graceful-shutdown suite: a served endpoint, killed
//! with SIGTERM mid-work, drains in-flight requests and exits 0.
//!
//! The in-process drain mechanics (draining visible on `/readyz`,
//! drain-duration histogram, worker join) are unit-tested in
//! `provbench-endpoint`; this suite proves the wiring end to end
//! through the real binary: signal handler installation, the
//! bind-first `listening on …` line, `--drain-ms`, the retrying
//! `--endpoint` client, and the process exit code.

use provbench::corpus::{store, Corpus, CorpusSpec};
use provbench::endpoint::{Client, ClientConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn provbench_bin() -> &'static str {
    env!("CARGO_BIN_EXE_provbench")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("provbench-shutdown-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A corpus small enough to load quickly, big enough that a cross-join
/// query holds a worker for a noticeable moment.
fn write_corpus(dir: &Path) {
    let spec = CorpusSpec {
        max_workflows: Some(2),
        total_runs: 3,
        failed_runs: 0,
        ..CorpusSpec::default()
    };
    store::save(&Corpus::generate(&spec), dir).unwrap();
}

/// Spawn `provbench serve` on an OS-assigned port and return the child
/// plus the address parsed from its bind-first `listening on …` line.
/// Remaining stderr is drained to a thread so the child never blocks
/// on a full pipe.
fn spawn_server(dir: &Path, drain_ms: u64) -> (Child, String, std::sync::mpsc::Receiver<String>) {
    let mut child = Command::new(provbench_bin())
        .args([
            "serve",
            "--dir",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--drain-ms",
            &drain_ms.to_string(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let stderr = child.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its address")
            .unwrap();
        if let Some(rest) = line.strip_prefix("listening on http://") {
            break rest.trim_end_matches('/').to_owned();
        }
    };
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in lines.map_while(Result::ok) {
            let _ = tx.send(line);
        }
    });
    (child, addr, rx)
}

/// Poll `/readyz` until the background corpus load lands.
fn await_ready(addr: &str) {
    let client = Client::with_config(
        &format!("http://{addr}"),
        ClientConfig {
            max_attempts: 1,
            ..ClientConfig::default()
        },
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(r) = client.get("/readyz") {
            if r.status == 200 {
                return;
            }
        }
        assert!(Instant::now() < deadline, "corpus never became ready");
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// Wait for the child to exit, with a deadline — a hung drain must
/// fail the test, not the suite's timeout.
fn wait_with_deadline(child: &mut Child, deadline: Duration) -> std::process::ExitStatus {
    let start = Instant::now();
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return status;
        }
        if start.elapsed() > deadline {
            let _ = child.kill();
            panic!("server did not exit within {deadline:?} of SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sigterm_drains_inflight_work_and_exits_zero() {
    let dir = tmpdir("sigterm");
    write_corpus(&dir);
    let (mut child, addr, stderr) = spawn_server(&dir, 30_000);
    await_ready(&addr);

    // End-to-end check of the retrying client wiring: `provbench query
    // --endpoint` against the live server.
    let remote = Command::new(provbench_bin())
        .args([
            "query",
            "SELECT (COUNT(?r) AS ?runs) WHERE { ?r a wfprov:WorkflowRun }",
            "--endpoint",
            &format!("http://{addr}"),
        ])
        .output()
        .unwrap();
    assert!(
        remote.status.success(),
        "remote query failed: {}",
        String::from_utf8_lossy(&remote.stderr)
    );
    let stdout = String::from_utf8_lossy(&remote.stdout);
    assert!(stdout.starts_with("runs"), "unexpected TSV: {stdout}");

    // Put a slow cross-join in flight, then SIGTERM the server while
    // the worker is still chewing on it.
    let slow = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let query = provbench::endpoint::url_encode(
                "SELECT (COUNT(*) AS ?n) WHERE { ?a ?b ?c . ?d ?e ?f }",
            );
            let mut stream = TcpStream::connect(&addr).unwrap();
            write!(
                stream,
                "GET /sparql?query={query} HTTP/1.1\r\nHost: t\r\n\r\n"
            )
            .unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response
        }
    });
    std::thread::sleep(Duration::from_millis(150));

    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());

    // The in-flight request completes, byte-complete, despite the
    // signal landing mid-evaluation.
    let response = slow.join().unwrap();
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "in-flight request was dropped: {response}"
    );
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
    assert!(
        response.contains(&format!("Content-Length: {}\r\n", body.len())),
        "truncated response: {response}"
    );

    // And the process drains and exits 0 well inside the drain budget.
    let status = wait_with_deadline(&mut child, Duration::from_secs(30));
    assert!(status.success(), "exit status {status:?}");
    let tail: Vec<String> = stderr.try_iter().collect();
    assert!(
        tail.iter().any(|l| l.contains("drained")),
        "no drain message in stderr tail: {tail:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGTERM with nothing in flight: immediate clean exit — the drain
/// loop must not wait out its deadline when there is nothing to drain.
#[test]
fn sigterm_when_idle_exits_promptly() {
    let dir = tmpdir("idle");
    write_corpus(&dir);
    let (mut child, addr, _stderr) = spawn_server(&dir, 30_000);
    await_ready(&addr);

    let sent = Instant::now();
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());
    let status = wait_with_deadline(&mut child, Duration::from_secs(10));
    assert!(status.success(), "exit status {status:?}");
    assert!(
        sent.elapsed() < Duration::from_secs(5),
        "idle shutdown took {:?}",
        sent.elapsed()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
