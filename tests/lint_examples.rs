//! The committed `examples/` corpus and its lint baseline stay in sync:
//! the two clean traces lint clean, the dissected files produce exactly
//! the documented findings, and the committed baseline suppresses all of
//! them — the contract the CI lint gate relies on.

use provbench::diag::{
    apply_baseline, json, lint_path, parse_baseline, render_sarif, Registry, Severity,
};
use std::path::Path;

// Lint via the same relative path CI uses: diagnostic fingerprints
// include the file path as given, so the baseline is tied to linting
// `examples` from the repository root (cargo's cwd for these tests).
fn examples_dir() -> &'static Path {
    let dir = Path::new("examples");
    assert!(
        dir.is_dir(),
        "test must run from the repository root (cargo does this)"
    );
    dir
}

#[test]
fn examples_match_their_committed_baseline() {
    let registry = Registry::with_default_rules();
    let mut reports = lint_path(examples_dir(), &registry, 2).expect("lint examples/");
    assert_eq!(reports.len(), 4, "expected 4 example files");

    // The clean traces are clean; the dissected files are not.
    for report in &reports {
        let dissected = report.path.contains("dissected");
        assert_eq!(
            !report.diagnostics.is_empty(),
            dissected,
            "{}: unexpected diagnostics state: {:#?}",
            report.path,
            report.diagnostics
        );
    }

    // The dissected fixtures demonstrate the documented rules.
    let fired: Vec<&str> = reports
        .iter()
        .flat_map(|r| r.diagnostics.iter().map(|d| d.rule.id))
        .collect();
    for id in ["PB0107", "PB0201", "PB0204", "PB0206", "PB0401", "PB0403"] {
        assert!(
            fired.contains(&id),
            "{id} should fire on examples/dissected"
        );
    }
    // Spanned Turtle diagnostics: every finding carries line/column.
    assert!(reports
        .iter()
        .flat_map(|r| &r.diagnostics)
        .all(|d| d.span.is_some() && d.file.is_some()));

    // The committed baseline accepts all of it.
    let baseline = parse_baseline(
        &std::fs::read_to_string(examples_dir().join("lint.baseline"))
            .expect("read examples/lint.baseline"),
    );
    let suppressed = apply_baseline(&mut reports, &baseline);
    assert!(suppressed > 0);
    let remaining: Vec<_> = reports.iter().flat_map(|r| &r.diagnostics).collect();
    assert!(
        remaining.is_empty(),
        "baseline out of date — regenerate with `provbench lint --write-baseline \
         examples/lint.baseline examples`; unsuppressed: {remaining:#?}"
    );
}

#[test]
fn examples_render_as_valid_sarif() {
    let registry = Registry::with_default_rules();
    let reports = lint_path(examples_dir(), &registry, 2).expect("lint examples/");
    let log = json::parse(&render_sarif(&reports, &registry)).expect("valid SARIF JSON");
    assert_eq!(
        log.get("version").and_then(json::Json::as_str),
        Some("2.1.0")
    );
    let results = log.get("runs").and_then(json::Json::as_array).unwrap()[0]
        .get("results")
        .and_then(json::Json::as_array)
        .unwrap();
    let errors = reports
        .iter()
        .flat_map(|r| &r.diagnostics)
        .filter(|d| d.severity == Severity::Error)
        .count();
    assert!(errors > 0);
    assert_eq!(
        results.len(),
        reports.iter().map(|r| r.diagnostics.len()).sum::<usize>()
    );
}
