//! The committed `examples/` corpus and its lint baseline stay in sync:
//! the two clean traces lint clean, the dissected files produce exactly
//! the documented findings, and the committed baseline suppresses all of
//! them — the contract the CI lint gate relies on.

use provbench::diag::{
    apply_baseline, collect_rdf_files, corpus_label, json, lint_content, lint_corpus_incremental,
    lint_graph, lint_path, parse_baseline, render_sarif, CorpusLintOptions, Registry, Severity,
};
use std::path::Path;

// Lint via the same relative path CI uses: diagnostic fingerprints
// include the file path as given, so the baseline is tied to linting
// `examples` from the repository root (cargo's cwd for these tests).
fn examples_dir() -> &'static Path {
    let dir = Path::new("examples");
    assert!(
        dir.is_dir(),
        "test must run from the repository root (cargo does this)"
    );
    dir
}

#[test]
fn examples_match_their_committed_baseline() {
    let registry = Registry::with_default_rules();
    let mut reports = lint_path(examples_dir(), &registry, 2).expect("lint examples/");
    assert_eq!(reports.len(), 12, "expected 12 example files");

    // The clean traces are clean; the dissected files are not.
    for report in &reports {
        let dissected = report.path.contains("dissected");
        assert_eq!(
            !report.diagnostics.is_empty(),
            dissected,
            "{}: unexpected diagnostics state: {:#?}",
            report.path,
            report.diagnostics
        );
    }

    // The dissected fixtures demonstrate the documented rules.
    let fired: Vec<&str> = reports
        .iter()
        .flat_map(|r| r.diagnostics.iter().map(|d| d.rule.id))
        .collect();
    for id in ["PB0107", "PB0201", "PB0204", "PB0206", "PB0401", "PB0403"] {
        assert!(
            fired.contains(&id),
            "{id} should fire on examples/dissected"
        );
    }
    // Spanned Turtle diagnostics: every finding carries line/column.
    assert!(reports
        .iter()
        .flat_map(|r| &r.diagnostics)
        .all(|d| d.span.is_some() && d.file.is_some()));

    // The committed baseline accepts all of it.
    let baseline = parse_baseline(
        &std::fs::read_to_string(examples_dir().join("lint.baseline"))
            .expect("read examples/lint.baseline"),
    );
    let suppressed = apply_baseline(&mut reports, &baseline);
    assert!(suppressed > 0);
    let remaining: Vec<_> = reports.iter().flat_map(|r| &r.diagnostics).collect();
    assert!(
        remaining.is_empty(),
        "baseline out of date — regenerate with `provbench lint --write-baseline \
         examples/lint.baseline examples`; unsuppressed: {remaining:#?}"
    );
}

/// Satellite of the snapshot path: linting a graph without a span table
/// (as `lint --dir` does after a snapshot load) must fire exactly the
/// same rules as the span-recording parse of the same file — positions
/// may be lost, findings may not.
#[test]
fn spanless_lint_matches_spanned_lint_rule_for_rule() {
    let registry = Registry::with_default_rules();
    for path in collect_rdf_files(examples_dir()).expect("collect examples") {
        let label = corpus_label(examples_dir(), &path);
        let content = std::fs::read_to_string(&path).expect("read example");
        let spanned = lint_content(&label, &content, &registry);
        let graph = if label.ends_with(".trig") {
            provbench::rdf::parse_trig(&content)
                .expect("parse")
                .0
                .union_graph()
        } else {
            provbench::rdf::parse_turtle(&content).expect("parse").0
        };
        let spanless = lint_graph(&label, &graph, &registry);
        let ids = |diags: &[provbench::diag::Diagnostic]| {
            let mut ids: Vec<&str> = diags.iter().map(|d| d.rule.id).collect();
            ids.sort();
            ids
        };
        assert_eq!(
            ids(&spanned),
            ids(&spanless),
            "{label}: spanned and span-less lint disagree"
        );
        assert!(spanless.iter().all(|d| d.span.is_none()));
    }
}

/// The corpus-wide rules fire on the examples tree (the dissected
/// files share no IRIs with the run series, so each is an orphan
/// document) and the committed baseline — regenerated with
/// `--corpus-rules` — suppresses every finding, which is what the CI
/// corpus-lint gate asserts.
#[test]
fn corpus_rules_on_examples_match_the_baseline() {
    let registry = Registry::with_corpus_rules();
    let opts = CorpusLintOptions {
        jobs: 2,
        corpus_rules: true,
        incremental: false,
        cache_path: None,
    };
    let outcome =
        lint_corpus_incremental(examples_dir(), &registry, &opts).expect("lint examples/");
    let mut reports = outcome.reports;
    let fired: Vec<&str> = reports
        .iter()
        .flat_map(|r| r.diagnostics.iter().map(|d| d.rule.id))
        .collect();
    assert!(
        fired.contains(&"PB0213"),
        "isolated example files should each be orphan documents; fired: {fired:?}"
    );
    let baseline = parse_baseline(
        &std::fs::read_to_string(examples_dir().join("lint.baseline"))
            .expect("read examples/lint.baseline"),
    );
    apply_baseline(&mut reports, &baseline);
    let remaining: Vec<_> = reports.iter().flat_map(|r| &r.diagnostics).collect();
    assert!(
        remaining.is_empty(),
        "baseline out of date — regenerate with `provbench lint --corpus-rules \
         --write-baseline examples/lint.baseline examples`; unsuppressed: {remaining:#?}"
    );
}

/// Incrementality end to end on a copy of the examples tree: a warm run
/// replays everything byte-identically, and editing one file re-runs
/// exactly that file's rule bodies.
#[test]
fn incremental_lint_over_examples_is_cold_warm_identical() {
    let dir = std::env::temp_dir().join(format!("provbench-lint-examples-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let files = collect_rdf_files(examples_dir()).expect("collect examples");
    for path in &files {
        let rel = path.strip_prefix(examples_dir()).expect("under examples/");
        let target = dir.join(rel);
        std::fs::create_dir_all(target.parent().expect("parent")).expect("mkdir");
        std::fs::copy(path, &target).expect("copy example");
    }
    let registry = Registry::with_corpus_rules();
    let opts = CorpusLintOptions {
        jobs: 2,
        corpus_rules: true,
        incremental: true,
        cache_path: None,
    };
    let cold = lint_corpus_incremental(&dir, &registry, &opts).expect("cold run");
    assert_eq!(cold.analyzed, files.len());
    let warm = lint_corpus_incremental(&dir, &registry, &opts).expect("warm run");
    assert_eq!(warm.analyzed, 0, "warm run must re-run zero rule bodies");
    assert_eq!(warm.reused, files.len());
    assert_eq!(
        provbench::diag::render_jsonl(&cold.reports),
        provbench::diag::render_jsonl(&warm.reports),
        "cold and warm diagnostics must be byte-identical"
    );
    assert_eq!(
        provbench::diag::render_sarif(&cold.reports, &registry),
        provbench::diag::render_sarif(&warm.reports, &registry),
    );
    // Append a comment to one file: content fingerprint changes, rules
    // re-run for that file alone, summaries of the rest are reused.
    let victim = dir.join("dissected/ordering-cycle.ttl");
    let mut content = std::fs::read_to_string(&victim).expect("read victim");
    content.push_str("\n# touched\n");
    std::fs::write(&victim, content).expect("touch victim");
    let edited = lint_corpus_incremental(&dir, &registry, &opts).expect("edited run");
    assert_eq!(edited.analyzed, 1, "only the edited file re-analyzes");
    assert_eq!(edited.reused, files.len() - 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Measurement behind the EXPERIMENTS.md number — run with
/// `cargo test --release --test lint_examples -- --ignored --nocapture`.
/// Times cold (full parse + rules) vs warm (snapshot replay) corpus
/// lint over the examples tree and asserts the ≥5× the docs claim.
#[test]
#[ignore = "timing measurement; run explicitly with --ignored --nocapture"]
fn measure_cold_vs_warm_lint_wall_time() {
    let dir = std::env::temp_dir().join(format!("provbench-lint-timing-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let files = collect_rdf_files(examples_dir()).expect("collect examples");
    for path in &files {
        let rel = path.strip_prefix(examples_dir()).expect("under examples/");
        let target = dir.join(rel);
        std::fs::create_dir_all(target.parent().expect("parent")).expect("mkdir");
        std::fs::copy(path, &target).expect("copy example");
    }
    let registry = Registry::with_corpus_rules();
    let opts = CorpusLintOptions {
        jobs: 1,
        corpus_rules: true,
        incremental: true,
        cache_path: None,
    };
    let cache_path = lint_corpus_incremental(&dir, &registry, &opts)
        .expect("seed run")
        .cache_path;
    // Best-of-batches: the minimum batch mean estimates the true cost
    // with scheduler noise stripped, applied identically to both sides.
    const BATCHES: u32 = 20;
    const ITERS: u32 = 20;
    let time = |cold: bool| {
        let mut best = f64::INFINITY;
        for _ in 0..BATCHES {
            let start = std::time::Instant::now();
            for _ in 0..ITERS {
                if cold {
                    let _ = std::fs::remove_file(&cache_path);
                }
                let outcome = lint_corpus_incremental(&dir, &registry, &opts).expect("lint");
                assert_eq!(outcome.analyzed, if cold { files.len() } else { 0 });
            }
            best = best.min(start.elapsed().as_secs_f64() / f64::from(ITERS));
        }
        best
    };
    let warm = time(false);
    let cold = time(true);
    println!(
        "examples corpus ({} files): cold {:.1} µs/run, warm {:.1} µs/run — {:.1}× speedup",
        files.len(),
        cold * 1e6,
        warm * 1e6,
        cold / warm
    );
    assert!(
        cold / warm >= 5.0,
        "warm lint should be ≥5× faster than cold (got {:.1}×)",
        cold / warm
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Multi-span diagnostics (the PB0107 cycle) surface their cycle
/// members as SARIF `relatedLocations` with messages and regions.
#[test]
fn sarif_related_locations_carry_cycle_members() {
    let registry = Registry::with_default_rules();
    let reports = lint_path(examples_dir(), &registry, 2).expect("lint examples/");
    let cycle = reports
        .iter()
        .flat_map(|r| &r.diagnostics)
        .find(|d| d.rule.id == "PB0107")
        .expect("ordering-cycle.ttl fires PB0107");
    assert!(
        !cycle.related.is_empty(),
        "PB0107 should point at its cycle members"
    );
    let log = json::parse(&render_sarif(&reports, &registry)).expect("valid SARIF JSON");
    let results = log.get("runs").and_then(json::Json::as_array).unwrap()[0]
        .get("results")
        .and_then(json::Json::as_array)
        .unwrap();
    let sarif_cycle = results
        .iter()
        .find(|r| r.get("ruleId").and_then(json::Json::as_str) == Some("PB0107"))
        .expect("PB0107 in SARIF results");
    let related = sarif_cycle
        .get("relatedLocations")
        .and_then(json::Json::as_array)
        .expect("relatedLocations array");
    assert_eq!(related.len(), cycle.related.len());
    for loc in related {
        assert!(loc
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(json::Json::as_str)
            .is_some_and(|t| t.contains("cycle member")));
        assert!(loc
            .get("physicalLocation")
            .and_then(|p| p.get("artifactLocation"))
            .and_then(|a| a.get("uri"))
            .and_then(json::Json::as_str)
            .is_some());
    }
}

#[test]
fn examples_render_as_valid_sarif() {
    let registry = Registry::with_default_rules();
    let reports = lint_path(examples_dir(), &registry, 2).expect("lint examples/");
    let log = json::parse(&render_sarif(&reports, &registry)).expect("valid SARIF JSON");
    assert_eq!(
        log.get("version").and_then(json::Json::as_str),
        Some("2.1.0")
    );
    let results = log.get("runs").and_then(json::Json::as_array).unwrap()[0]
        .get("results")
        .and_then(json::Json::as_array)
        .unwrap();
    let errors = reports
        .iter()
        .flat_map(|r| &r.diagnostics)
        .filter(|d| d.severity == Severity::Error)
        .count();
    assert!(errors > 0);
    assert_eq!(
        results.len(),
        reports.iter().map(|r| r.diagnostics.len()).sum::<usize>()
    );
}
