//! The paper's §4: run all six exemplar provenance queries against a
//! generated corpus and print their answers.
//!
//! ```sh
//! cargo run --example exemplar_queries
//! ```

use provbench::corpus::{Corpus, CorpusSpec};
use provbench::query::exemplar::{
    q1_runs, q2_template_runs, q3_template_run_io, q4_process_runs, q5_executor, q6_services,
};
use provbench::workflow::System;

fn main() {
    let spec = CorpusSpec {
        max_workflows: Some(70), // includes both Taverna and Wings workflows
        total_runs: 90,
        failed_runs: 8,
        ..CorpusSpec::default()
    };
    let corpus = Corpus::generate(&spec);
    let graph = corpus.combined_graph();

    // Q1 -----------------------------------------------------------------
    let runs = q1_runs(&graph);
    println!("Q1: {} workflow runs available.", runs.len());
    let timed = runs.iter().filter(|r| r.started.is_some()).count();
    println!("    {timed} carry start/end times (Taverna + Wings account times).\n");

    // Q2 -----------------------------------------------------------------
    let template = &corpus.templates[0].1.name;
    let t = q2_template_runs(&graph, template);
    println!(
        "Q2: template {template} has {} runs, {} failed.\n",
        t.runs.len(),
        t.failed
    );

    // Q3 -----------------------------------------------------------------
    for io in q3_template_run_io(&graph, template) {
        println!(
            "Q3: run {} used {} inputs, generated {} outputs.",
            io.run.as_str(),
            io.inputs.len(),
            io.outputs.len()
        );
    }
    println!();

    // Q4 -----------------------------------------------------------------
    let run = &t.runs[0];
    let processes = q4_process_runs(&graph, run);
    println!(
        "Q4: run {} has {} process runs:",
        run.as_str(),
        processes.len()
    );
    for p in &processes {
        println!(
            "    {} [{} → {}] in={} out={}",
            p.process.as_str().rsplit('/').next().unwrap_or(""),
            p.started.map_or("-".into(), |t| t.to_string()),
            p.ended.map_or("-".into(), |t| t.to_string()),
            p.inputs.len(),
            p.outputs.len()
        );
    }
    println!("    (start/end only available in Taverna provenance logs)\n");

    // Q5 -----------------------------------------------------------------
    for (agent, name) in q5_executor(&graph, run) {
        println!(
            "Q5: run executed by {} ({}).",
            name.unwrap_or_default(),
            agent.as_str()
        );
    }
    println!();

    // Q6 -----------------------------------------------------------------
    let wings_trace = corpus
        .traces_of(System::Wings)
        .next()
        .expect("corpus has Wings traces");
    let account = provbench::wings::account_iri(&wings_trace.run_id);
    let services = q6_services(&graph, &account);
    println!(
        "Q6: Wings run {} executed {} services:",
        wings_trace.run_id,
        services.len()
    );
    for s in services.iter().take(5) {
        println!("    {}", s.as_str());
    }
    println!("    (only available in Wings provenance logs)");
}
