//! Ad-hoc SPARQL over a generated corpus: pass a query on the command
//! line (or pipe it on stdin) and get a table of solutions.
//!
//! ```sh
//! cargo run --example sparql -- \
//!   'SELECT ?run WHERE { ?run a wfprov:WorkflowRun } LIMIT 5'
//! ```
//!
//! The prefixes of `provbench::query::exemplar::PREFIXES` (prov, wfprov,
//! wfdesc, opmw, tavernaprov, foaf, xsd) are pre-bound.

use provbench::corpus::{Corpus, CorpusSpec};
use provbench::query::exemplar::PREFIXES;
use provbench::query::QueryEngine;
use std::io::Read;

fn main() {
    let arg = std::env::args().nth(1);
    let query_body = match arg {
        Some(q) => q,
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("read stdin");
            if buf.trim().is_empty() {
                // A sensible default: runs per user.
                "SELECT ?name (COUNT(?run) AS ?n) WHERE { \
                   ?run prov:wasAssociatedWith ?agent . \
                   ?agent a prov:Person . ?agent foaf:name ?name \
                 } GROUP BY ?name ORDER BY DESC(?n)"
                    .to_owned()
            } else {
                buf
            }
        }
    };

    let spec = CorpusSpec {
        max_workflows: Some(40),
        total_runs: 60,
        failed_runs: 6,
        ..CorpusSpec::default()
    };
    eprintln!("generating corpus ({} workflows, {} runs)…", 40, 60);
    let corpus = Corpus::generate(&spec);
    let graph = corpus.combined_graph();
    eprintln!("querying {} triples…\n", graph.len());

    let full_query = format!("{PREFIXES}\n{query_body}");
    let engine = QueryEngine::new(&graph);
    match engine.prepare(&full_query).and_then(|p| p.select()) {
        Ok(solutions) => {
            println!("{}", solutions.variables.join("\t"));
            for row in &solutions.rows {
                let cells: Vec<String> = solutions
                    .variables
                    .iter()
                    .map(|v| row.get(v).map_or("-".to_owned(), |t| t.to_string()))
                    .collect();
                println!("{}", cells.join("\t"));
            }
            eprintln!("\n{} solutions.", solutions.len());
        }
        Err(e) => {
            eprintln!("query failed: {e}");
            std::process::exit(1);
        }
    }
}
