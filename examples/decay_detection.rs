//! The paper's §3.iii application: workflow decay — compare the results
//! of repeated runs of the same template over time, and repair failed
//! runs from previous results.
//!
//! ```sh
//! cargo run --example decay_detection
//! ```

use provbench::analysis::{decay_summary, repair_candidates};
use provbench::corpus::{Corpus, CorpusSpec};

fn main() {
    // The full paper-shaped corpus: templates get up to 2 runs ~5 weeks
    // apart, and volatile (third-party-service) steps drift between runs.
    let corpus = Corpus::generate(&CorpusSpec::default());

    let reports = decay_summary(&corpus);
    let decayed = reports.iter().filter(|r| r.decayed).count();
    println!(
        "{} templates have longitudinal series; {} show decay.\n",
        reports.len(),
        decayed
    );

    for report in reports.iter().filter(|r| r.decayed).take(5) {
        let (a, b) = report.first_change.expect("decayed implies a change point");
        let (first, second) = (&report.observations[a], &report.observations[b]);
        println!("template {}:", report.template);
        println!(
            "  run {} ({}) vs run {} ({})",
            first.run_id,
            if first.failed { "FAILED" } else { "ok" },
            second.run_id,
            if second.failed { "FAILED" } else { "ok" },
        );
        if second.failed {
            println!("  decay mode: later run failed outright");
            let repairs = repair_candidates(&corpus, &second.run_id);
            for (output, donor, _) in &repairs {
                println!("  repair: take `{output}` from earlier run {donor}");
            }
        } else {
            println!(
                "  decay mode: same inputs, different outputs ({} vs {} checksums)",
                first.output_checksums.len(),
                second.output_checksums.len()
            );
        }
        println!();
    }
}
