//! The paper's §3.ii application: debug workflow executions — find the
//! process responsible for each failure and the steps it affected.
//!
//! ```sh
//! cargo run --example debug_failed_run
//! ```

use provbench::analysis::diagnose_corpus;
use provbench::corpus::{Corpus, CorpusSpec};

fn main() {
    let spec = CorpusSpec {
        max_workflows: Some(80),
        total_runs: 110,
        failed_runs: 10,
        ..CorpusSpec::default()
    };
    let corpus = Corpus::generate(&spec);
    println!(
        "Corpus: {} runs, {} failed. Diagnosing from the provenance traces…\n",
        corpus.traces.len(),
        corpus.failed_count()
    );

    for report in diagnose_corpus(&corpus) {
        let trace = corpus
            .traces
            .iter()
            .find(|t| t.run_id == report.run_id)
            .expect("report refers to a corpus run");
        println!("run {} ({}):", report.run_id, trace.system.name());
        println!("  responsible process : {}", report.failed_process.as_str());
        println!("  recorded cause      : {}", report.cause);
        println!("  affected steps      : {}", report.affected_steps.len());
        for step in report.affected_steps.iter().take(4) {
            println!("      {}", step.as_str());
        }
        println!();
    }
}
