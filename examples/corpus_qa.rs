//! Corpus quality assurance — the paper's §6 maintenance workflow:
//! profile-lint every trace, validate PROV constraints, analyze
//! cross-system interoperability, and reconstruct a run timeline with
//! its critical path.
//!
//! ```sh
//! cargo run --example corpus_qa
//! ```

use provbench::analysis::{interop_report, lint_corpus, timeline_of};
use provbench::corpus::{Corpus, CorpusSpec};
use provbench::prov::validate;
use provbench::workflow::System;

fn main() {
    let spec = CorpusSpec {
        max_workflows: Some(70),
        total_runs: 90,
        failed_runs: 8,
        ..CorpusSpec::default()
    };
    let corpus = Corpus::generate_with_threads(&spec, 4);
    println!(
        "corpus: {} runs ({} failed)\n",
        corpus.traces.len(),
        corpus.failed_count()
    );

    // 1. Profile lint: every trace must follow its system's conventions.
    let dirty = lint_corpus(&corpus);
    println!(
        "lint: {} traces checked, {} findings",
        corpus.traces.len(),
        dirty.len()
    );

    // 2. PROV-CONSTRAINTS: temporal sanity, unique generation, acyclicity.
    let violations: usize = corpus
        .traces
        .iter()
        .map(|t| validate(&t.union_graph()).len())
        .sum();
    println!("constraints: {violations} violations across all traces");

    // 3. Interoperability: which questions can both systems answer?
    println!("\n{}", interop_report(&corpus));

    // 4. Timeline + critical path of the longest Taverna run.
    let trace = corpus
        .traces_of(System::Taverna)
        .filter(|t| !t.failed())
        .max_by_key(|t| t.run.ended_ms - t.run.started_ms)
        .expect("a successful Taverna run");
    let run_iri = provbench::rdf::Iri::new_unchecked(format!(
        "{}workflow-run",
        provbench::taverna::run_base_iri(&trace.run_id)
    ));
    let tl = timeline_of(&trace.union_graph(), &run_iri).expect("Taverna runs are timed");
    println!(
        "timeline of {}: makespan {} ms, total work {} ms, parallelism {:.2}",
        trace.run_id,
        tl.makespan_ms,
        tl.total_work_ms(),
        tl.parallelism()
    );
    println!("critical path ({} steps):", tl.critical_path.len());
    for p in &tl.critical_path {
        println!("  {}", p.as_str().rsplit('/').next().unwrap_or(""));
    }
}
