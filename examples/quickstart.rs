//! Quickstart: generate a small corpus, save it to disk, reload it, and
//! run the paper's Q1 over it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use provbench::corpus::{stats::CorpusStats, stats::Table1, store, Corpus, CorpusSpec};
use provbench::query::exemplar::q1_runs;

fn main() {
    // A corpus slice: 12 workflows, 20 runs, 3 failures. The full paper
    // shape (120 workflows / 198 runs / 30 failures) is
    // `CorpusSpec::default()` — same code, a few seconds longer.
    let spec = CorpusSpec {
        max_workflows: Some(12),
        total_runs: 20,
        failed_runs: 3,
        ..CorpusSpec::default()
    };
    println!("Generating corpus (seed {}).", spec.seed);
    let corpus = Corpus::generate(&spec);

    let stats = CorpusStats::compute(&corpus);
    println!(
        "{} workflows, {} runs ({} failed), {} triples, {:.2} MiB serialized.",
        stats.workflows,
        stats.runs,
        stats.failed_runs,
        stats.triples,
        stats.serialized_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("\nTable 1 (regenerated):\n{}", Table1::from_stats(&stats));

    // The corpus on disk, in the published layout.
    let dir = std::env::temp_dir().join("provbench-quickstart");
    let saved = store::save(&corpus, &dir).expect("save corpus");
    println!(
        "Saved {} files ({} bytes) under {}.",
        saved.files,
        saved.bytes,
        dir.display()
    );
    let loaded = store::load(&dir).expect("load corpus");
    println!("Reloaded {} traces.", loaded.traces.len());

    // Q1: what runs exist, and when did they start/end?
    println!("\nQ1 — workflow runs with start/end times:");
    let graph = corpus.combined_graph();
    for run in q1_runs(&graph).into_iter().take(8) {
        println!(
            "  {}\n    start: {}  end: {}",
            run.run.as_str(),
            run.started
                .map_or("(not recorded)".into(), |t| t.to_string()),
            run.ended.map_or("(not recorded)".into(), |t| t.to_string()),
        );
    }
    println!("  … (Wings accounts record no prov:startedAtTime — see Table 2)");
}
