//! The `provbench` command-line tool: generate, inspect, validate,
//! query and serve the corpus.
//!
//! ```text
//! provbench generate --out DIR [--payload N] [--seed N]   write the corpus to disk
//! provbench stats [--seed N]                              Table 1 + Figure 1
//! provbench coverage [--seed N]                           Tables 2 and 3
//! provbench validate --dir DIR                            PROV-constraint-check a corpus directory
//! provbench lint [PATH] [--format F] [--baseline FILE]    static-analyse corpus files (provlint)
//! provbench query 'SPARQL' [--dir DIR]                    query a corpus (generated or loaded)
//! provbench serve [--addr HOST:PORT]                      SPARQL endpoint + web UI
//! provbench snapshot build|info --dir DIR                 manage the binary corpus snapshot
//! ```
//!
//! Every `--dir` consumer loads through `CorpusStore::open_or_build`: a
//! valid `corpus.snapshot` is memory-loaded, anything else falls back
//! to parsing the RDF sources and rewrites the snapshot.

use provbench::analysis::coverage::term_usage;
use provbench::analysis::{coverage_of_corpus, dependency_edges};
use provbench::corpus::stats::{CorpusStats, Table1};
use provbench::corpus::{research_object_for, store, Corpus, CorpusSpec};
use provbench::endpoint::{url_encode, Client, Endpoint, ServerConfig, ShutdownSignal};
use provbench::prov::from_rdf::graph_to_document;
use provbench::prov::{validate, write_provn};
use provbench::query::exemplar::PREFIXES;
use provbench::query::{QueryEngine, QueryError, QueryParseError};
use provbench::rdf::Graph;
use provbench::workflow::System;
use std::path::Path;
use std::process::ExitCode;

struct Options {
    seed: u64,
    payload: usize,
    out: Option<String>,
    dir: Option<String>,
    addr: String,
    format: String,
    baseline: Option<String>,
    write_baseline: Option<String>,
    deny: String,
    jobs: Option<usize>,
    strict: bool,
    corpus_rules: bool,
    incremental: bool,
    explain_rule: Option<String>,
    trace: Option<String>,
    endpoint: Option<String>,
    drain_ms: Option<u64>,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        seed: 42,
        payload: 0,
        out: None,
        dir: None,
        addr: "127.0.0.1:3030".into(),
        format: "text".into(),
        baseline: None,
        write_baseline: None,
        deny: "error".into(),
        jobs: None,
        strict: false,
        corpus_rules: false,
        incremental: false,
        explain_rule: None,
        trace: None,
        endpoint: None,
        drain_ms: None,
        positional: Vec::new(),
    };
    // Accept both `--opt value` and `--opt=value`.
    let args: Vec<String> = args
        .iter()
        .flat_map(
            |a| match a.strip_prefix("--").and_then(|r| r.split_once('=')) {
                Some((k, v)) => vec![format!("--{k}"), v.to_owned()],
                None => vec![a.clone()],
            },
        )
        .collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                o.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?
            }
            "--payload" => {
                o.payload = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--payload needs an integer")?
            }
            "--out" => o.out = Some(it.next().ok_or("--out needs a path")?.clone()),
            "--dir" => o.dir = Some(it.next().ok_or("--dir needs a path")?.clone()),
            "--addr" => o.addr = it.next().ok_or("--addr needs host:port")?.clone(),
            "--format" => o.format = it.next().ok_or("--format needs text|json|sarif")?.clone(),
            "--baseline" => o.baseline = Some(it.next().ok_or("--baseline needs a file")?.clone()),
            "--write-baseline" => {
                o.write_baseline = Some(it.next().ok_or("--write-baseline needs a file")?.clone())
            }
            "--deny" => o.deny = it.next().ok_or("--deny needs error|warning|info")?.clone(),
            "--jobs" => {
                o.jobs = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--jobs needs an integer")?,
                )
            }
            "--strict" => o.strict = true,
            "--corpus-rules" => o.corpus_rules = true,
            "--incremental" => o.incremental = true,
            "--explain" => {
                o.explain_rule = Some(it.next().ok_or("--explain needs a rule id")?.clone())
            }
            "--trace" => o.trace = Some(it.next().ok_or("--trace needs a file path")?.clone()),
            "--endpoint" => o.endpoint = Some(it.next().ok_or("--endpoint needs a URL")?.clone()),
            "--drain-ms" => {
                o.drain_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--drain-ms needs an integer")?,
                )
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => o.positional.push(other.to_owned()),
        }
    }
    Ok(o)
}

fn spec_of(o: &Options) -> CorpusSpec {
    CorpusSpec {
        seed: o.seed,
        value_payload: o.payload,
        ..CorpusSpec::default()
    }
}

/// Store options derived from the command line: `--jobs` and `--strict`.
fn store_options(o: &Options) -> store::StoreOptions<'static> {
    store::StoreOptions {
        jobs: o.jobs.unwrap_or_else(store::default_load_jobs),
        strict: o.strict,
        ..store::StoreOptions::default()
    }
}

/// Open a corpus directory through the binary snapshot cache: a valid
/// `corpus.snapshot` memory-loads, anything else falls back to a
/// (parallel) parse of the RDF sources and rewrites the snapshot.
/// Unparsable files are quarantined (reported, not fatal) unless
/// `--strict` is given.
fn open_dir_store(o: &Options, dir: &str) -> Result<store::CorpusStore, String> {
    let s = store::CorpusStore::open_or_build_opts(Path::new(dir), &store_options(o))
        .map_err(|e| format!("load {dir}: {e}"))?;
    if !s.ingest.is_clean() {
        eprintln!("warning: {} (see `provbench snapshot info`)", s.ingest);
    }
    if s.corpus.traces.is_empty() {
        return Err(format!("{dir} contains no corpus traces"));
    }
    Ok(s)
}

/// One-line description of where a store's data came from, for logs and
/// the endpoint's `/stats` route.
fn provenance_summary(p: &store::SnapshotProvenance) -> String {
    if p.warm {
        format!(
            "snapshot {} (warm, v{}, {} bytes)",
            p.path.display(),
            p.version,
            p.snapshot_bytes
        )
    } else {
        match &p.rebuild_reason {
            Some(reason) => format!("rebuilt from {} source files: {reason}", p.source_files),
            None => format!("parsed {} source files (snapshot written)", p.source_files),
        }
    }
}

fn corpus_graph(o: &Options) -> Result<(Graph, String), String> {
    match &o.dir {
        Some(dir) => {
            let s = open_dir_store(o, dir)?;
            let source = provenance_summary(&s.provenance);
            Ok((s.union, source))
        }
        None => Ok((
            Corpus::generate(&spec_of(o)).combined_graph(),
            format!("generated in memory (seed {})", o.seed),
        )),
    }
}

fn cmd_generate(o: &Options) -> Result<(), String> {
    let out = o.out.as_deref().ok_or("generate needs --out DIR")?;
    let corpus = Corpus::generate(&spec_of(o));
    let saved = store::save(&corpus, Path::new(out)).map_err(|e| format!("save {out}: {e}"))?;
    println!(
        "wrote {} files / {:.1} MB to {out} (seed {}, fingerprint {:016x})",
        saved.files,
        saved.bytes as f64 / (1024.0 * 1024.0),
        o.seed,
        corpus.fingerprint()
    );
    Ok(())
}

fn cmd_stats(o: &Options) -> Result<(), String> {
    let corpus = Corpus::generate(&spec_of(o));
    let stats = CorpusStats::compute(&corpus);
    println!("{}", Table1::from_stats(&stats));
    println!(
        "workflows {} · runs {} · failed {} · process runs {} · triples {}",
        stats.workflows, stats.runs, stats.failed_runs, stats.process_runs, stats.triples
    );
    println!("\nFigure 1 — domains:");
    for row in &stats.domain_histogram {
        println!(
            "  {:26} {}{}",
            row.name,
            "T".repeat(row.taverna),
            "W".repeat(row.wings)
        );
    }
    Ok(())
}

fn cmd_coverage(o: &Options) -> Result<(), String> {
    let corpus = Corpus::generate(&spec_of(o));
    print!("{}", coverage_of_corpus(&corpus));
    Ok(())
}

fn cmd_validate(o: &Options) -> Result<(), String> {
    let dir = o.dir.as_deref().ok_or("validate needs --dir DIR")?;
    let loaded = open_dir_store(o, dir)?.corpus;
    let mut bad = 0usize;
    for trace in &loaded.traces {
        let violations = validate(&trace.dataset.union_graph());
        if !violations.is_empty() {
            bad += 1;
            println!("✗ {}:", trace.run_id);
            for v in violations {
                println!("    {v}");
            }
        }
    }
    println!(
        "{} traces checked, {} with violations",
        loaded.traces.len(),
        bad
    );
    if bad > 0 {
        return Err(format!("{bad} traces violate PROV constraints"));
    }
    Ok(())
}

/// Render a parse error with its source location and a caret snippet
/// pointing at the offending token:
///
/// ```text
/// parse error at 12:7: expected a variable or term
///    12 | SELECT ?x WHERE { ?x a nope:y }
///       |       ^
/// ```
fn render_parse_error(source: &str, e: &QueryParseError) -> String {
    let mut out = format!("parse error at {e}");
    let Some(line) = source.lines().nth(e.line.saturating_sub(1)) else {
        return out;
    };
    let width = e.line.to_string().len().max(4);
    let carets = if e.end_line == e.line && e.end_column > e.column {
        e.end_column - e.column
    } else {
        1
    };
    out.push_str(&format!(
        "\n{:>width$} | {line}\n{:>width$} | {}{}",
        e.line,
        "",
        " ".repeat(e.column.saturating_sub(1)),
        "^".repeat(carets.max(1)),
    ));
    out
}

fn query_error(source: &str, e: QueryError) -> String {
    match e {
        QueryError::Parse(p) => render_parse_error(source, &p),
        other => other.to_string(),
    }
}

/// Run the query against a served endpoint instead of a local graph,
/// through the retrying [`Client`] (jittered backoff, honors
/// Retry-After, idempotent GETs only — see docs/query.md).
fn remote_query(url: &str, q: &str) -> Result<(), String> {
    let client = Client::new(url)?;
    let full = format!("{PREFIXES}\n{q}");
    let path = format!("/sparql?format=tsv&query={}", url_encode(&full));
    let response = client.get(&path).map_err(|e| format!("query {url}: {e}"))?;
    if response.status != 200 {
        return Err(format!(
            "endpoint answered {}: {}",
            response.status,
            response.text().trim()
        ));
    }
    print!("{}", response.text());
    eprintln!("(served by {url})");
    Ok(())
}

fn cmd_query(o: &Options) -> Result<(), String> {
    let q = o.positional.first().ok_or("query needs a SPARQL string")?;
    if let Some(url) = &o.endpoint {
        return remote_query(url, q);
    }
    let (graph, source) = corpus_graph(o)?;
    eprintln!("corpus: {source}");
    let full = format!("{PREFIXES}\n{q}");
    // `--jobs` also parallelizes evaluation; results are byte-identical
    // to a serial run whatever the count.
    let eval_opts = provbench::query::EvalOptions::default().with_jobs(o.jobs.unwrap_or(1));
    // Stream rows to stdout as the physical plan produces them — a
    // LIMITed query over a huge corpus prints (and finishes) without
    // ever materializing the full result set.
    let prepared = QueryEngine::with_options(&graph, eval_opts)
        .prepare(&full)
        .map_err(|e| query_error(&full, e))?;
    let rows = prepared.rows().map_err(|e| query_error(&full, e))?;
    let variables = rows.variables().to_vec();
    println!("{}", variables.join("\t"));
    let mut count = 0usize;
    for row in rows {
        let row = row.map_err(|e| query_error(&full, e))?;
        count += 1;
        let cells: Vec<String> = variables
            .iter()
            .map(|v| row.get(v).map_or("-".into(), |t| t.to_string()))
            .collect();
        println!("{}", cells.join("\t"));
    }
    eprintln!("{count} solutions over {} triples", graph.len());
    Ok(())
}

/// The endpoint configuration shared by both serve modes: `--jobs` and
/// the `--drain-ms` graceful-shutdown deadline.
fn serve_config(o: &Options) -> ServerConfig {
    let mut config = ServerConfig::new().eval_jobs(o.jobs.unwrap_or(1));
    if let Some(ms) = o.drain_ms {
        config = config.drain_deadline(std::time::Duration::from_millis(ms));
    }
    config
}

/// Bind, install SIGTERM/Ctrl-C handlers, and serve until a shutdown is
/// requested; in-flight requests drain before this returns. Binding
/// before printing means `--addr 127.0.0.1:0` reports the actual port.
fn serve_endpoint(endpoint: &Endpoint, addr: &str) -> Result<(), String> {
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    let shutdown = ShutdownSignal::new();
    if !shutdown.install_termination_handler() {
        eprintln!("warning: no SIGTERM/Ctrl-C handler on this platform; kill to stop");
    }
    eprintln!("listening on http://{local}/");
    endpoint
        .serve_with_shutdown(listener, &shutdown)
        .map_err(|e| e.to_string())?;
    eprintln!("shutdown: in-flight requests drained, exiting");
    Ok(())
}

fn cmd_serve(o: &Options) -> Result<(), String> {
    let Some(dir) = o.dir.clone() else {
        // In-memory corpus: nothing to watch, serve directly.
        let (graph, source) = corpus_graph(o)?;
        eprintln!("serving {} triples (corpus: {source})", graph.len());
        let endpoint = Endpoint::with_config(graph, serve_config(o).source(source));
        return serve_endpoint(&endpoint, &o.addr);
    };

    // Degraded-mode serving: bind and answer /healthz immediately, load
    // the corpus in the background (readiness flips when it lands), and
    // keep watching the source directory — a fingerprint change triggers
    // a rebuild while requests keep being served from the old graph.
    let endpoint = Endpoint::unready(serve_config(o));
    let loader = endpoint.clone();
    let opts_jobs = o.jobs.unwrap_or_else(store::default_load_jobs);
    let strict = o.strict;
    let dir_path = std::path::PathBuf::from(&dir);
    std::thread::spawn(move || {
        let mut served: Option<(u64, u64)> = None;
        loop {
            let fingerprint = store::source_fingerprint(&dir_path).ok();
            if fingerprint.is_some() && fingerprint != served {
                loader.set_rebuilding(true);
                let opts = store::StoreOptions {
                    jobs: opts_jobs,
                    strict,
                    ..store::StoreOptions::default()
                };
                match store::CorpusStore::open_or_build_opts(&dir_path, &opts) {
                    Ok(s) => {
                        let summary = provenance_summary(&s.provenance);
                        let quarantined = s.ingest.errors.len();
                        if quarantined > 0 {
                            eprintln!("warning: {}", s.ingest);
                        }
                        eprintln!("corpus loaded: {} triples ({summary})", s.union.len());
                        // Lint the freshly loaded corpus (with the
                        // corpus-wide rules) and publish the report on
                        // `GET /lint` alongside the graph itself.
                        let registry = provbench::diag::Registry::with_corpus_rules();
                        let reports = lint_store(&s, &registry, true);
                        let (lint_errors, _, _) = provbench::diag::severity_counts(&reports);
                        loader.set_lint_report(
                            provbench::diag::render_lint_json(&reports),
                            lint_errors,
                        );
                        eprintln!(
                            "lint report published: {} files, {} errors (GET /lint)",
                            reports.len(),
                            lint_errors
                        );
                        loader.set_ingest_errors(quarantined);
                        loader.replace_graph(s.union, summary);
                    }
                    Err(e) => {
                        loader.set_rebuilding(false);
                        eprintln!("corpus load failed: {e}");
                    }
                }
                // Even a failed load pins the fingerprint: retry only
                // when the sources change again, not in a tight loop.
                served = fingerprint;
            }
            std::thread::sleep(std::time::Duration::from_secs(2));
        }
    });
    eprintln!("degraded until {dir} finishes loading; watch /readyz");
    serve_endpoint(&endpoint, &o.addr)
}

fn find_trace<'a>(
    corpus: &'a Corpus,
    run_id: &str,
) -> Result<&'a provbench::corpus::TraceRecord, String> {
    corpus
        .traces
        .iter()
        .find(|t| t.run_id == run_id)
        .ok_or_else(|| format!("no run {run_id:?} in the corpus (see `provbench stats`)"))
}

fn cmd_nquads(o: &Options) -> Result<(), String> {
    let out = o.out.as_deref().ok_or("nquads needs --out FILE")?;
    let corpus = Corpus::generate(&spec_of(o));
    let nq = store::export_nquads(&corpus);
    std::fs::write(out, &nq).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} bytes of N-Quads to {out}", nq.len());
    Ok(())
}

fn cmd_provn(o: &Options) -> Result<(), String> {
    let run_id = o.positional.first().ok_or("provn needs a RUN_ID")?;
    let corpus = Corpus::generate(&spec_of(o));
    let trace = find_trace(&corpus, run_id)?;
    let doc = graph_to_document(&trace.union_graph());
    print!("{}", write_provn(&doc));
    Ok(())
}

fn cmd_lineage(o: &Options) -> Result<(), String> {
    let run_id = o.positional.first().ok_or("lineage needs a RUN_ID")?;
    let corpus = Corpus::generate(&spec_of(o));
    let trace = find_trace(&corpus, run_id)?;
    let lineage = dependency_edges(&trace.union_graph());
    print!("{}", lineage.to_dot());
    Ok(())
}

fn cmd_ro(o: &Options) -> Result<(), String> {
    let template = o.positional.first().ok_or("ro needs a TEMPLATE name")?;
    let corpus = Corpus::generate(&spec_of(o));
    let manifest = research_object_for(&corpus, template)
        .ok_or_else(|| format!("no template {template:?}"))?;
    print!(
        "{}",
        provbench::rdf::write_turtle(&manifest, &provbench::rdf::PrefixMap::common())
    );
    Ok(())
}

fn cmd_provjson(o: &Options) -> Result<(), String> {
    let run_id = o.positional.first().ok_or("provjson needs a RUN_ID")?;
    let corpus = Corpus::generate(&spec_of(o));
    let trace = find_trace(&corpus, run_id)?;
    let doc = graph_to_document(&trace.union_graph());
    println!("{}", provbench::prov::write_provjson(&doc));
    Ok(())
}

fn cmd_timeline(o: &Options) -> Result<(), String> {
    let run_id = o.positional.first().ok_or("timeline needs a RUN_ID")?;
    let corpus = Corpus::generate(&spec_of(o));
    let trace = find_trace(&corpus, run_id)?;
    let run_iri = provbench::rdf::Iri::new_unchecked(format!(
        "{}workflow-run",
        provbench::taverna::run_base_iri(run_id)
    ));
    let tl = provbench::analysis::timeline_of(&trace.union_graph(), &run_iri)
        .ok_or("no timed process runs (Wings accounts record no activity times)")?;
    println!(
        "makespan {} ms · total work {} ms · parallelism {:.2}",
        tl.makespan_ms,
        tl.total_work_ms(),
        tl.parallelism()
    );
    let on_path = |p: &provbench::rdf::Iri| tl.critical_path.contains(p);
    for e in &tl.entries {
        println!(
            "{} {:6} ms  {}{}",
            e.started,
            e.duration_ms,
            e.process.as_str().rsplit('/').next().unwrap_or(""),
            if on_path(&e.process) {
                "  ← critical path"
            } else {
                ""
            }
        );
    }
    Ok(())
}

fn cmd_explain(o: &Options) -> Result<(), String> {
    let q = o
        .positional
        .first()
        .ok_or("explain needs a SPARQL string")?;
    let (graph, _source) = corpus_graph(o)?;
    let full = format!("{PREFIXES}\n{q}");
    let prepared = QueryEngine::new(&graph)
        .prepare(&full)
        .map_err(|e| query_error(&full, e))?;
    print!("{}", prepared.explain());
    eprintln!("(estimates computed over {} triples)", graph.len());
    Ok(())
}

fn cmd_interop(o: &Options) -> Result<(), String> {
    let corpus = Corpus::generate(&spec_of(o));
    print!("{}", provbench::analysis::interop_report(&corpus));
    Ok(())
}

/// Print the full catalog entry for one rule id (`--explain PB0104`).
fn explain_rule(id: &str) -> Result<(), String> {
    use provbench::diag;

    let doc = diag::rule_doc(id)
        .ok_or_else(|| format!("no rule {id:?} — ids run PB0001..PB0403, see docs/linting.md"))?;
    println!("{} — {}", doc.info.id, doc.info.slug);
    println!("severity:  {}", doc.info.severity);
    println!("summary:   {}", doc.info.summary);
    println!("rationale: {}", doc.rationale);
    println!("example:   {}", doc.example);
    Ok(())
}

/// Lint every graph of a snapshot-loaded store. The graphs carry no
/// concrete syntax, so diagnostics have file labels but no spans. With
/// `corpus_rules`, summaries are extracted per graph and the corpus
/// fixpoint's findings are merged in.
fn lint_store(
    s: &store::CorpusStore,
    registry: &provbench::diag::Registry,
    corpus_rules: bool,
) -> Vec<provbench::diag::FileReport> {
    use provbench::diag;

    let mut reports = Vec::new();
    let mut summaries: Vec<(String, diag::AnalysisSummary)> = Vec::new();
    for d in &s.corpus.descriptions {
        let label = format!(
            "{}/{}/{}",
            d.system.name().to_ascii_lowercase(),
            d.template_name,
            store::description_file(d.system)
        );
        if corpus_rules {
            summaries.push((label.clone(), diag::AnalysisSummary::of_graph(&d.graph)));
        }
        reports.push(diag::FileReport {
            diagnostics: diag::lint_graph(&label, &d.graph, registry),
            path: label,
        });
    }
    for trace in &s.corpus.traces {
        let label = format!(
            "{}/{}/{}.{}",
            trace.system.name().to_ascii_lowercase(),
            trace.template_name,
            trace.run_id,
            store::trace_extension(trace.system)
        );
        let graph = trace.dataset.union_graph();
        if corpus_rules {
            summaries.push((label.clone(), diag::AnalysisSummary::of_graph(&graph)));
        }
        reports.push(diag::FileReport {
            diagnostics: diag::lint_graph(&label, &graph, registry),
            path: label,
        });
    }
    if corpus_rules {
        diag::apply_corpus_rules(&mut reports, &summaries);
    }
    reports
}

/// Lint a path on disk, a corpus directory loaded through its snapshot
/// (`--dir`), or — with neither — the generated corpus serialized in
/// memory exactly as `provbench generate` would write it.
fn cmd_lint(o: &Options) -> Result<(), String> {
    use provbench::diag;

    if let Some(id) = &o.explain_rule {
        return explain_rule(id);
    }

    let registry = if o.corpus_rules {
        diag::Registry::with_corpus_rules()
    } else {
        diag::Registry::with_default_rules()
    };
    let jobs = o.jobs.unwrap_or_else(diag::default_jobs);
    if o.incremental && o.positional.is_empty() {
        return Err("--incremental needs a PATH to lint (the snapshot lives beside it)".into());
    }
    let mut reports: Vec<diag::FileReport> = match (o.positional.first(), &o.dir) {
        (Some(path), _) => {
            let opts = diag::CorpusLintOptions {
                jobs,
                corpus_rules: o.corpus_rules,
                incremental: o.incremental,
                cache_path: None,
            };
            let outcome = diag::lint_corpus_incremental(Path::new(path), &registry, &opts)
                .map_err(|e| format!("lint {path}: {e}"))?;
            if o.incremental {
                eprintln!(
                    "incremental lint: {} analyzed, {} cached ({})",
                    outcome.analyzed,
                    outcome.reused,
                    outcome.cache_path.display()
                );
            }
            outcome.reports
        }
        (None, Some(dir)) => lint_store(&open_dir_store(o, dir)?, &registry, o.corpus_rules),
        (None, None) => {
            let corpus = Corpus::generate(&spec_of(o));
            let mut files: Vec<(String, String)> = Vec::new();
            for ((system, template), description) in
                corpus.templates.iter().zip(&corpus.descriptions)
            {
                let label = format!(
                    "{}/{}/{}",
                    system.name().to_ascii_lowercase(),
                    template.name,
                    store::description_file(*system)
                );
                files.push((label, store::serialize_description(description)));
            }
            for trace in &corpus.traces {
                let label = format!(
                    "{}/{}/{}.{}",
                    trace.system.name().to_ascii_lowercase(),
                    trace.template_name,
                    trace.run_id,
                    store::trace_extension(trace.system)
                );
                files.push((label, store::serialize_trace(trace)));
            }
            let mut reports: Vec<diag::FileReport> = Vec::with_capacity(files.len());
            let mut summaries: Vec<(String, diag::AnalysisSummary)> = Vec::new();
            for (label, content) in files {
                if o.corpus_rules {
                    let parsed = if label.ends_with(".trig") {
                        provbench::rdf::parse_trig(&content).map(|(ds, _)| ds.union_graph())
                    } else {
                        provbench::rdf::parse_turtle(&content).map(|(g, _)| g)
                    };
                    if let Ok(graph) = parsed {
                        summaries.push((label.clone(), diag::AnalysisSummary::of_graph(&graph)));
                    }
                }
                reports.push(diag::FileReport {
                    diagnostics: diag::lint_content(&label, &content, &registry),
                    path: label,
                });
            }
            if o.corpus_rules {
                diag::apply_corpus_rules(&mut reports, &summaries);
            }
            reports
        }
    };

    if let Some(file) = &o.baseline {
        let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
        let suppressed = diag::apply_baseline(&mut reports, &diag::parse_baseline(&text));
        if suppressed > 0 {
            eprintln!("{suppressed} findings suppressed by baseline {file}");
        }
    }
    if let Some(file) = &o.write_baseline {
        let text = diag::format_baseline(&reports);
        let entries = text.lines().filter(|l| !l.starts_with('#')).count();
        std::fs::write(file, &text).map_err(|e| format!("write {file}: {e}"))?;
        println!("wrote baseline with {entries} fingerprints to {file}");
        return Ok(());
    }

    match o.format.as_str() {
        "text" => print!("{}", diag::render_text(&reports)),
        "json" | "jsonl" => print!("{}", diag::render_jsonl(&reports)),
        "sarif" => println!("{}", diag::render_sarif(&reports, &registry)),
        other => return Err(format!("unknown --format {other:?} (text|json|sarif)")),
    }
    let (errors, warnings, infos) = diag::severity_counts(&reports);
    let denied = match o.deny.as_str() {
        "error" => errors,
        "warning" | "warn" => errors + warnings,
        "info" => errors + warnings + infos,
        other => return Err(format!("unknown --deny {other:?} (error|warning|info)")),
    };
    if denied > 0 {
        return Err(format!(
            "{denied} findings at or above the --deny={} level",
            o.deny
        ));
    }
    Ok(())
}

/// `snapshot build` / `snapshot info`: manage the binary corpus cache.
fn cmd_snapshot(o: &Options) -> Result<(), String> {
    let action = o
        .positional
        .first()
        .map(String::as_str)
        .ok_or("snapshot needs an action: build | info")?;
    let dir = o.dir.as_deref().ok_or("snapshot needs --dir DIR")?;
    let opts = store_options(o);
    let s = match action {
        "build" => store::CorpusStore::build_opts(Path::new(dir), &opts)
            .map_err(|e| format!("build {dir}: {e}"))?,
        "info" => store::CorpusStore::open_or_build_opts(Path::new(dir), &opts)
            .map_err(|e| format!("open {dir}: {e}"))?,
        other => return Err(format!("unknown snapshot action {other:?} (build | info)")),
    };
    let p = &s.provenance;
    println!("snapshot: {}", p.path.display());
    if p.warm {
        println!(
            "status: warm (format v{}, {} bytes)",
            p.version, p.snapshot_bytes
        );
    } else {
        match &p.rebuild_reason {
            Some(reason) => println!("status: rebuilt ({reason})"),
            None => println!(
                "status: built (format v{}, {} bytes)",
                p.version, p.snapshot_bytes
            ),
        }
        if p.snapshot_bytes == 0 {
            println!("warning: snapshot could not be written (read-only directory?)");
        }
    }
    println!("source: {} files, {} bytes", p.source_files, p.source_bytes);
    println!(
        "corpus: {} traces + {} descriptions, {} triples, {} terms",
        s.corpus.traces.len(),
        s.corpus.descriptions.len(),
        s.union.len(),
        s.union.term_count()
    );
    if s.ingest.is_clean() {
        println!("ingest: clean ({} files attempted)", s.ingest.attempted);
        Ok(())
    } else {
        println!("ingest: {}", s.ingest);
        for e in &s.ingest.errors {
            println!("  quarantined: {e}");
        }
        // Quarantined files mean the served corpus is incomplete — make
        // that visible to scripts through the exit code.
        Err(format!("{}", s.ingest))
    }
}

fn cmd_usage(o: &Options) -> Result<(), String> {
    let corpus = Corpus::generate(&spec_of(o));
    let rows = term_usage(
        &corpus.system_graph(System::Taverna),
        &corpus.system_graph(System::Wings),
    );
    println!("{:26} {:>10} {:>10}", "PROV term", "Taverna", "Wings");
    for r in rows {
        println!(
            "{:26} {:>10} {:>10}",
            r.term, r.taverna_count, r.wings_count
        );
    }
    Ok(())
}

const USAGE: &str = "usage: provbench <command> [options]
  generate --out DIR [--seed N] [--payload N]   write the corpus to disk
  stats    [--seed N]                           Table 1 + Figure 1
  coverage [--seed N]                           Tables 2 and 3
  usage    [--seed N]                           per-term assertion counts
  lint     [PATH] [--format text|json|sarif]    static-analyse corpus files
           [--baseline FILE] [--write-baseline FILE] [--deny LEVEL] [--jobs N]
           [--corpus-rules] [--incremental] [--explain PB0xxx]
           (no PATH: lints the generated corpus in memory;
            --corpus-rules adds the cross-document PB021x pack,
            --incremental caches per-file results in corpus.lint.snapshot,
            --explain prints one rule's catalog entry and exits)
  validate --dir DIR                            PROV-constraint-check a corpus dir
  query 'SPARQL' [--dir DIR | --seed N] [--jobs N]   run SPARQL over the corpus
           (--jobs parallelizes evaluation; 0 = one per core, results
            byte-identical to a serial run for any count)
           [--endpoint URL] sends the query to a served endpoint instead,
            with jittered retries on transient failures (docs/query.md)
  serve    [--addr HOST:PORT] [--dir DIR] [--jobs N] SPARQL endpoint + web UI
           (with --dir: loads in the background; /healthz + /readyz report state;
            --jobs sets per-request evaluation threads, default 1;
            SIGTERM/Ctrl-C drains in-flight requests before exiting —
            --drain-ms MS bounds the drain, default 5000)
  nquads   --out FILE [--seed N]                bulk N-Quads export
  provn    RUN_ID [--seed N]                    one trace as PROV-N
  provjson RUN_ID [--seed N]                    one trace as PROV-JSON
  timeline RUN_ID [--seed N]                    run timeline + critical path
  interop  [--seed N]                           cross-system capability report
  lineage  RUN_ID [--seed N]                    one trace's lineage as DOT
  ro       TEMPLATE [--seed N]                  research-object manifest (Turtle)
  explain 'SPARQL' [--dir DIR | --seed N]       show the evaluation plan + estimates
  snapshot build|info --dir DIR [--jobs N]      build/inspect the binary corpus snapshot
           (query/serve/validate/lint --dir load through it automatically;
            info exits non-zero if any source file is quarantined)
  --strict on any --dir command: fail fast on the first unparsable source
           file instead of quarantining it
  --trace FILE on any command: append JSONL span events (name, start_us,
           dur_us, thread) to FILE — see docs/observability.md";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let options = match parse_options(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &options.trace {
        match std::fs::File::create(path) {
            Ok(file) => {
                provbench::obs::global().set_trace_writer(Box::new(std::io::BufWriter::new(file)))
            }
            Err(e) => {
                eprintln!("error: cannot open trace file {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&options),
        "stats" => cmd_stats(&options),
        "coverage" => cmd_coverage(&options),
        "usage" => cmd_usage(&options),
        "lint" => cmd_lint(&options),
        "provjson" => cmd_provjson(&options),
        "timeline" => cmd_timeline(&options),
        "interop" => cmd_interop(&options),
        "explain" => cmd_explain(&options),
        "snapshot" => cmd_snapshot(&options),
        "validate" => cmd_validate(&options),
        "query" => cmd_query(&options),
        "serve" => cmd_serve(&options),
        "nquads" => cmd_nquads(&options),
        "provn" => cmd_provn(&options),
        "lineage" => cmd_lineage(&options),
        "ro" => cmd_ro(&options),
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if options.trace.is_some() {
        // Flush buffered span events before the process exits.
        provbench::obs::global().clear_trace_writer();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
