//! # provbench
//!
//! Facade crate of the ProvBench reproduction — a from-scratch Rust
//! implementation of the system behind *"A Workflow PROV-Corpus based on
//! Taverna and Wings"* (Belhajjame et al., EDBT/ICDT Workshops 2013).
//!
//! Re-exports every sub-crate under a short module name:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`rdf`] | `provbench-rdf` | RDF terms, graphs, datasets, Turtle/N-Triples/TriG I/O |
//! | [`vocab`] | `provbench-vocab` | PROV-O, wfprov, wfdesc, OPMW, RO term tables |
//! | [`prov`] | `provbench-prov` | PROV model, PROV-O mapping, inference, constraints |
//! | [`workflow`] | `provbench-workflow` | templates, domain catalog, executor |
//! | [`taverna`] | `provbench-taverna` | Taverna engine simulator + PROV export |
//! | [`wings`] | `provbench-wings` | Wings engine simulator + OPMW export |
//! | [`corpus`] | `provbench-core` | corpus spec, generation, store, statistics |
//! | [`query`] | `provbench-query` | SPARQL-subset engine + the six exemplar queries |
//! | [`analysis`] | `provbench-analysis` | coverage tables, lineage, debugging, decay |
//! | [`diag`] | `provbench-diag` | the `provlint` engine: rule registry, spans, SARIF |
//! | [`obs`] | `provbench-obs` | metrics registry, tracing spans, Prometheus exposition |
//!
//! ## Quickstart
//!
//! ```
//! use provbench::analysis::coverage_of_corpus;
//! use provbench::corpus::{Corpus, CorpusSpec};
//! use provbench::query::exemplar::q1_runs;
//!
//! // A miniature corpus (the paper's full shape is `CorpusSpec::default()`).
//! let spec = CorpusSpec { max_workflows: Some(3), total_runs: 5, failed_runs: 1, ..CorpusSpec::default() };
//! let corpus = Corpus::generate(&spec);
//! let runs = q1_runs(&corpus.combined_graph());
//! assert_eq!(runs.len(), 5);
//! let tables = coverage_of_corpus(&corpus);
//! assert_eq!(tables.starting_point.len(), 12);
//! ```

pub use provbench_analysis as analysis;
pub use provbench_core as corpus;
pub use provbench_diag as diag;
pub use provbench_endpoint as endpoint;
pub use provbench_obs as obs;
pub use provbench_prov as prov;
pub use provbench_query as query;
pub use provbench_rdf as rdf;
pub use provbench_taverna as taverna;
pub use provbench_vocab as vocab;
pub use provbench_wings as wings;
pub use provbench_workflow as workflow;
